package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reptile/internal/core"
)

func TestParseFull(t *testing.T) {
	in := `
# experiment configuration
fasta = /data/ecoli.fa
qual  = /data/ecoli.qual
out   = /tmp/corrected
ranks = 64
streaming = true

k = 10
overlap = 2
kmer-threshold = 5          # dashes and underscores interchangeable
tile_threshold = 4
quality_threshold = 20
max_err_positions = 8
max_err_per_tile = 1
max_corrections_per_read = 12
chunk = 2000
load_balance = false

universal = true
read_kmers = true
cache_remote = true
batch_reads = true
partial_replication = 4
lookup_batch = 32
lookup-window = 2
workers = 3

chaos = delay=1ms,slow=2x8,crash=1@500
chaos_seed = 99
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.FastaPath != "/data/ecoli.fa" || s.QualPath != "/data/ecoli.qual" || s.OutPrefix != "/tmp/corrected" {
		t.Errorf("paths: %+v", s)
	}
	if s.Ranks != 64 || !s.Streaming {
		t.Errorf("ranks/streaming: %+v", s)
	}
	c := s.Options.Config
	if c.Spec.K != 10 || c.Spec.Overlap != 2 || c.KmerThreshold != 5 || c.TileThreshold != 4 {
		t.Errorf("spec: %+v", c)
	}
	if c.QualThreshold != 20 || c.MaxErrPositions != 8 || c.MaxErrPerTile != 1 || c.MaxCorrectionsPerRead != 12 || c.ChunkReads != 2000 {
		t.Errorf("corrector params: %+v", c)
	}
	if s.Options.LoadBalance {
		t.Error("load_balance not applied")
	}
	if s.Options.AutoThresholds {
		t.Error("auto_thresholds default should be false")
	}
	s2, err := Parse(strings.NewReader("auto_thresholds = true\n"))
	if err != nil || !s2.Options.AutoThresholds {
		t.Errorf("auto_thresholds not applied: %v", err)
	}
	h := s.Options.Heuristics
	if !h.Universal || !h.RetainReadKmers || !h.CacheRemote || !h.BatchReads || h.PartialReplicationGroup != 4 {
		t.Errorf("heuristics: %+v", h)
	}
	if h.LookupBatch != 32 || h.LookupWindow != 2 || h.Workers != 3 {
		t.Errorf("lookup batching keys: %+v", h)
	}
	p := s.Options.Chaos
	if p == nil {
		t.Fatal("chaos spec not compiled into Options.Chaos")
	}
	if p.Seed != 99 || p.Delay != time.Millisecond || p.SlowRank != 2 || p.SlowFactor != 8 ||
		p.CrashRank != 1 || p.CrashAfter != 500 {
		t.Errorf("chaos plan: %+v", p)
	}
}

func TestParseDefaultsAndComments(t *testing.T) {
	s, err := Parse(strings.NewReader("# nothing but comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := Default()
	if s.Ranks != d.Ranks || s.OutPrefix != d.OutPrefix {
		t.Errorf("defaults not preserved: %+v", s)
	}
	if err := s.Options.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":      "bogus = 1\n",
		"no equals":        "fasta /x\n",
		"bad int":          "ranks = many\n",
		"bad bool":         "universal = yes-ish\n",
		"bad layout":       "replicate_kmers = true\nreplicated_layout = btree\n",
		"bad chaos":        "chaos = warp=1\n",
		"bad chaos seed":   "chaos_seed = soon\n",
		"invalid combo":    "k = 0\n",
		"quality range":    "quality_threshold = 1000\n",
		"workers no batch": "workers = 4\n",
		"negative batch":   "lookup_batch = -2\n",
		"cache sans read":  "", // covered below separately
	}
	delete(cases, "cache sans read")
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestCacheRemoteImpliesReadKmers(t *testing.T) {
	s, err := Parse(strings.NewReader("cache_remote = true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Options.Heuristics.RetainReadKmers {
		t.Error("cache_remote did not imply read_kmers")
	}
}

func TestLayoutParsing(t *testing.T) {
	for val, want := range map[string]core.Layout{
		"hash": core.LayoutHash, "sorted": core.LayoutSorted,
		"cacheaware": core.LayoutCacheAware, "cache-aware": core.LayoutCacheAware,
	} {
		in := "replicate_tiles = true\nreplicated_layout = " + val + "\n"
		s, err := Parse(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", val, err)
		}
		if s.Options.Heuristics.ReplicatedLayout != want {
			t.Errorf("%s parsed as %v", val, s.Options.Heuristics.ReplicatedLayout)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	orig := Default()
	orig.FastaPath = "a.fa"
	orig.QualPath = "a.qual"
	orig.Ranks = 32
	orig.Streaming = true
	orig.Options.Heuristics.Universal = true
	orig.Options.Heuristics.ReplicateTiles = true
	orig.Options.Heuristics.ReplicatedLayout = core.LayoutCacheAware
	orig.Options.Heuristics.LookupBatch = 16
	orig.Options.Heuristics.LookupWindow = 3
	orig.Options.Heuristics.Workers = 2
	back, err := Parse(strings.NewReader(orig.Render()))
	if err != nil {
		t.Fatalf("rendered config does not parse: %v\n%s", err, orig.Render())
	}
	if back != orig {
		t.Errorf("round trip drifted:\n%+v\n%+v", orig, back)
	}
}

func TestRenderRoundTripChaos(t *testing.T) {
	orig := Default()
	orig.ChaosSpec = "delay=2ms,jitter=1ms,slow=1x4"
	orig.ChaosSeed = 7
	back, err := Parse(strings.NewReader(orig.Render()))
	if err != nil {
		t.Fatalf("rendered config does not parse: %v\n%s", err, orig.Render())
	}
	if back.ChaosSpec != orig.ChaosSpec || back.ChaosSeed != 7 {
		t.Errorf("chaos keys drifted: %+v", back)
	}
	p := back.Options.Chaos
	if p == nil || p.Seed != 7 || p.Delay != 2*time.Millisecond || p.Jitter != time.Millisecond ||
		p.SlowRank != 1 || p.SlowFactor != 4 {
		t.Errorf("chaos plan drifted: %+v", p)
	}
}

func TestServeKeys(t *testing.T) {
	s, err := Parse(strings.NewReader("serve_addr = 127.0.0.1:7311\nserve_max_sessions = 4\nserve_tenant_window = 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	sv := s.Options.Serve
	if sv == nil || sv.Addr != "127.0.0.1:7311" || sv.MaxSessions != 4 || sv.TenantWindow != 2 {
		t.Fatalf("serve keys not applied: %+v", sv)
	}

	// Negative knobs are the same Validate error the engine would raise.
	if _, err := Parse(strings.NewReader("serve_max_sessions = -1\n")); err == nil {
		t.Error("negative serve_max_sessions accepted")
	}
	if _, err := Parse(strings.NewReader("serve_tenant_window = -1\n")); err == nil {
		t.Error("negative serve_tenant_window accepted")
	}

	// Zero/empty values (Render's form for "not configured") are no-ops, so
	// rendered settings round-trip without materializing a serve block.
	s, err = Parse(strings.NewReader("serve_addr =\nserve_max_sessions = 0\nserve_tenant_window = 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Options.Serve != nil {
		t.Fatalf("empty serve keys created a serve block: %+v", s.Options.Serve)
	}
}

func TestRenderRoundTripServe(t *testing.T) {
	orig := Default()
	orig.Options.Serve = &core.ServeOptions{Addr: "0.0.0.0:7311", MaxSessions: 3, TenantWindow: 5}
	back, err := Parse(strings.NewReader(orig.Render()))
	if err != nil {
		t.Fatalf("rendered config does not parse: %v\n%s", err, orig.Render())
	}
	sv := back.Options.Serve
	if sv == nil || *sv != *orig.Options.Serve {
		t.Errorf("serve block drifted: %+v", sv)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.conf")
	if err := os.WriteFile(path, []byte("ranks = 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil || s.Ranks != 3 {
		t.Errorf("Load: %+v, %v", s, err)
	}
	if _, err := Load(filepath.Join(dir, "missing.conf")); err == nil {
		t.Error("Load accepted missing file")
	}
}

func TestSnapshotKeys(t *testing.T) {
	s, err := Parse(strings.NewReader("snapshot_dir = /tmp/spectra-cache\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Options.Snapshot == nil || s.Options.Snapshot.Dir != "/tmp/spectra-cache" {
		t.Fatalf("snapshot_dir not applied: %+v", s.Options.Snapshot)
	}
	if s.Options.Snapshot.InputDigest != "" {
		t.Error("config parsing must not compute an input digest")
	}

	s, err = Parse(strings.NewReader("snapshot_path = /data/ecoli\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Options.Snapshot == nil || s.Options.Snapshot.Path != "/data/ecoli" {
		t.Fatalf("snapshot_path not applied: %+v", s.Options.Snapshot)
	}

	// Both at once is the Validate error the engine would also raise.
	if _, err := Parse(strings.NewReader("snapshot_dir = /a\nsnapshot_path = /b\n")); err == nil {
		t.Error("snapshot_dir + snapshot_path accepted")
	}

	// An empty value (Render's form for "not configured") is a no-op, so
	// rendered settings round-trip.
	s, err = Parse(strings.NewReader("snapshot_dir =\nsnapshot_path =\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Options.Snapshot != nil {
		t.Fatalf("empty snapshot keys created a snapshot block: %+v", s.Options.Snapshot)
	}
}
