package core

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"reptile/internal/reads"
)

// failingSource errors on a chosen rank after a few batches; every other
// rank serves normally. It exercises the engine's error propagation: a
// failed rank must not leave its peers blocked in collectives forever.
type failingSource struct {
	inner    Source
	failRank int
	after    int
}

type failingReader struct {
	inner BatchReader
	fail  bool
	after int
	count int
}

func (s *failingSource) Open(rank, np, chunk int) (BatchReader, error) {
	br, err := s.inner.Open(rank, np, chunk)
	if err != nil {
		return nil, err
	}
	return &failingReader{inner: br, fail: rank == s.failRank, after: s.after}, nil
}

func (r *failingReader) NextBatch() ([]reads.Read, error) {
	if r.fail && r.count >= r.after {
		return nil, errors.New("injected source failure")
	}
	r.count++
	return r.inner.NextBatch()
}

func (r *failingReader) Close() error { return r.inner.Close() }

func TestRankFailurePropagatesWithoutHanging(t *testing.T) {
	ds, opts := testDataset(t, 2000, 5000)
	opts.Config.ChunkReads = 100
	src := &failingSource{inner: &MemorySource{Reads: ds.Reads}, failRank: 2, after: 1}

	// The abort protocol makes failure propagation prompt: no per-test
	// watchdog goroutine, just the shared chaos deadline.
	err := awaitRun(t, "rank failure", func() error {
		_, err := Run(src, 4, opts)
		return err
	})
	if err == nil {
		t.Fatal("run succeeded despite injected failure")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("%T is not an AbortError: %v", err, err)
	}
	if ab.Rank != 2 || ab.Phase != "read" {
		t.Errorf("abort attributed to rank %d phase %q, want rank 2 phase read", ab.Rank, ab.Phase)
	}
}

// openFailSource fails at Open time on one rank — before any collective.
type openFailSource struct{ failRank int }

func (s *openFailSource) Open(rank, np, chunk int) (BatchReader, error) {
	if rank == s.failRank {
		return nil, fmt.Errorf("injected open failure")
	}
	return &emptyReader{}, nil
}

type emptyReader struct{}

func (e *emptyReader) NextBatch() ([]reads.Read, error) { return nil, io.EOF }
func (e *emptyReader) Close() error                     { return nil }

func TestOpenFailurePropagatesWithoutHanging(t *testing.T) {
	_, opts := testDataset(t, 10, 5100)
	err := awaitRun(t, "open failure", func() error {
		_, err := Run(&openFailSource{failRank: 0}, 4, opts)
		return err
	})
	if err == nil {
		t.Fatal("run succeeded despite open failure")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("%T is not an AbortError: %v", err, err)
	}
	if ab.Rank != 0 {
		t.Errorf("abort attributed to rank %d, want rank 0", ab.Rank)
	}
}

// TestStreamingFailurePropagates is the streaming-mode analogue: a source
// that fails mid-stream on one rank must error out the whole run, not leave
// peers blocked at the next chunk-boundary collective.
func TestStreamingFailurePropagates(t *testing.T) {
	ds, opts := testDataset(t, 2000, 5150)
	opts.Config.ChunkReads = 100
	src := &failingSource{inner: &MemorySource{Reads: ds.Reads}, failRank: 1, after: 2}
	err := awaitRun(t, "streaming failure", func() error {
		_, err := RunStreaming(src, 4, opts, discardFactory())
		return err
	})
	if err == nil {
		t.Fatal("streaming run succeeded despite injected failure")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("%T is not an AbortError: %v", err, err)
	}
	if ab.Rank != 1 {
		t.Errorf("abort attributed to rank %d, want rank 1", ab.Rank)
	}
}

func TestEmptyInput(t *testing.T) {
	_, opts := testDataset(t, 10, 5200)
	out, err := Run(&MemorySource{Reads: nil}, 4, opts)
	if err != nil {
		t.Fatalf("empty input failed: %v", err)
	}
	if len(out.Corrected()) != 0 || out.Result.BasesCorrected != 0 {
		t.Errorf("empty input produced output: %+v", out.Result)
	}
}

func TestFewerReadsThanRanks(t *testing.T) {
	ds, opts := testDataset(t, 3, 5300)
	out, err := Run(&MemorySource{Reads: ds.Reads}, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Corrected()); got != 3 {
		t.Errorf("returned %d reads, want 3", got)
	}
}

func TestCorrectionIsIdempotent(t *testing.T) {
	// Correcting already-corrected reads must change (almost) nothing: the
	// corrected reads' tiles are solid by construction. Allow a tiny
	// residue for reads whose first pass hit the per-read correction cap.
	ds, opts := testDataset(t, 3000, 5400)
	first, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(&MemorySource{Reads: first.Corrected()}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.BasesCorrected == 0 {
		t.Fatal("first pass corrected nothing; test is vacuous")
	}
	if second.Result.BasesCorrected*10 > first.Result.BasesCorrected {
		t.Errorf("second pass corrected %d bases vs first pass %d: not converging",
			second.Result.BasesCorrected, first.Result.BasesCorrected)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds, opts := testDataset(t, 1500, 5500)
	a, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&MemorySource{Reads: ds.Reads}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	ac, bc := a.Corrected(), b.Corrected()
	for i := range ac {
		for j := range ac[i].Base {
			if ac[i].Base[j] != bc[i].Base[j] {
				t.Fatalf("run-to-run nondeterminism at read %d pos %d", ac[i].Seq, j)
			}
		}
	}
	if a.Result != b.Result {
		t.Errorf("results differ: %+v vs %+v", a.Result, b.Result)
	}
}
