package core

import (
	"fmt"
	"io"

	"reptile/internal/fastaio"
	"reptile/internal/reads"
)

// Source provides each rank's shard of the input reads. Implementations
// mirror the paper's Step I: the file source performs real byte-offset
// partitioning of a fasta+qual pair; the memory source slices an in-memory
// dataset proportionally (used by tests, benches and the harness).
type Source interface {
	// Open returns a chunked reader over rank's shard. chunk is the batch
	// size (the configuration file's chunk parameter).
	Open(rank, np, chunk int) (BatchReader, error)
}

// BatchReader streams a shard chunk by chunk; io.EOF ends the shard.
type BatchReader interface {
	NextBatch() ([]reads.Read, error)
	Close() error
}

// MemorySource shards a dataset already in memory.
type MemorySource struct {
	Reads []reads.Read
}

// Open returns rank's proportional contiguous slice.
func (s *MemorySource) Open(rank, np, chunk int) (BatchReader, error) {
	if rank < 0 || rank >= np {
		return nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, np)
	}
	n := len(s.Reads)
	lo := n * rank / np
	hi := n * (rank + 1) / np
	return &memoryReader{shard: s.Reads[lo:hi], chunk: chunk}, nil
}

type memoryReader struct {
	shard []reads.Read
	chunk int
	pos   int
}

func (r *memoryReader) NextBatch() ([]reads.Read, error) {
	if r.pos >= len(r.shard) {
		return nil, io.EOF
	}
	end := r.pos + r.chunk
	if end > len(r.shard) {
		end = len(r.shard)
	}
	batch := r.shard[r.pos:end]
	r.pos = end
	return batch, nil
}

func (r *memoryReader) Close() error { return nil }

// FileSource shards a fasta + quality file pair with the paper's
// byte-offset partitioning.
type FileSource struct {
	FastaPath string
	QualPath  string
}

// Open locates rank's shard in both files.
func (s *FileSource) Open(rank, np, chunk int) (BatchReader, error) {
	sr, err := fastaio.OpenShard(s.FastaPath, s.QualPath, rank, np)
	if err != nil {
		return nil, err
	}
	sr.ChunkReads = chunk
	return sr, nil
}
