package reptile

// One benchmark per table and figure of the paper's evaluation section
// (regenerated through internal/harness at bench scale), plus ablation
// benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/reptile-bench runs the same experiments at larger scales and prints
// the full tables.

import (
	"sync"
	"testing"

	"reptile/internal/bloom"
	"reptile/internal/collective"
	"reptile/internal/core"
	"reptile/internal/genome"
	"reptile/internal/harness"
	"reptile/internal/kmer"
	irept "reptile/internal/reptile"
	"reptile/internal/spectrum"
	"reptile/internal/transport"
)

// benchExperiment runs one harness experiment per iteration at quick scale.
func benchExperiment(b *testing.B, id string) {
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := harness.QuickScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableI_Datasets(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig2_RanksPerNode(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3_SpectrumBalance(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4_LoadBalance(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5_Heuristics(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6_EColiScaling(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7_DrosophilaScaling(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8_HumanScaling(b *testing.B)      { benchExperiment(b, "fig8") }

// --- ablation benches ---

// benchStoreData builds a deterministic spectrum for the store comparison.
func benchStoreData(n int) ([]spectrum.Entry, []kmer.ID) {
	h := spectrum.NewHash(n)
	rng := kmer.ID(12345)
	next := func() kmer.ID {
		rng = kmer.ID(kmer.HashID(rng))
		return rng
	}
	for h.Len() < n {
		h.Add(next(), 7)
	}
	entries := h.Entries()
	probes := make([]kmer.ID, 4096)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = entries[(i*37)%len(entries)].ID // hit
		} else {
			probes[i] = next() // almost surely a miss
		}
	}
	return entries, probes
}

// BenchmarkAblation_Stores compares the paper's hash-table spectrum against
// the prior art's sorted-array and cache-aware layouts.
func BenchmarkAblation_Stores(b *testing.B) {
	entries, probes := benchStoreData(1 << 18)
	hash := spectrum.NewHash(len(entries))
	for _, e := range entries {
		hash.Add(e.ID, e.Count)
	}
	stores := []struct {
		name string
		s    spectrum.Lookuper
	}{
		{"hash", hash},
		{"packed", spectrum.NewPacked(entries)},
		{"sorted", spectrum.NewSorted(entries)},
		{"cacheaware", spectrum.NewCacheAware(entries)},
	}
	for _, st := range stores {
		b.Run(st.name, func(b *testing.B) {
			var hits int
			for i := 0; i < b.N; i++ {
				if _, ok := st.s.Count(probes[i%len(probes)]); ok {
					hits++
				}
			}
			_ = hits
		})
	}
}

// BenchmarkAblation_ReplicatedLayout runs the fully-replicated engine with
// each spectrum layout: the paper's hash tables vs the prior
// parallelizations' sorted and cache-aware arrays.
func BenchmarkAblation_ReplicatedLayout(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	for _, layout := range []core.Layout{core.LayoutHash, core.LayoutSorted, core.LayoutCacheAware} {
		b.Run(layout.String(), func(b *testing.B) {
			opts := core.Options{
				Config: irept.ForCoverage(ds.Coverage()),
				Heuristics: core.Heuristics{
					ReplicateKmers: true, ReplicateTiles: true, ReplicatedLayout: layout,
				},
				LoadBalance: true,
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(&core.MemorySource{Reads: ds.Reads}, 8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Collectives compares the flat star and binomial-tree
// gather/bcast, and the dissemination barrier.
func BenchmarkAblation_Collectives(b *testing.B) {
	const np = 64
	runAll := func(b *testing.B, body func(c *collective.Comm) error) {
		eps, err := transport.NewProcGroup(np)
		if err != nil {
			b.Fatal(err)
		}
		defer transport.CloseGroup(eps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			comms := make([]*collective.Comm, np)
			for r := 0; r < np; r++ {
				comms[r] = collective.New(eps[r])
			}
			for r := 0; r < np; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if err := body(comms[r]); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
	}
	payload := make([]byte, 64)
	b.Run("gather-flat", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { _, err := c.GatherFlat(0, payload); return err })
	})
	b.Run("gather-tree", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { _, err := c.GatherTree(0, payload); return err })
	})
	b.Run("bcast-flat", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { _, err := c.BcastFlat(0, payload); return err })
	})
	b.Run("bcast-tree", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { _, err := c.BcastTree(0, payload); return err })
	})
	b.Run("barrier-dissemination", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { return c.BarrierDissemination() })
	})
	b.Run("barrier-tree", func(b *testing.B) {
		runAll(b, func(c *collective.Comm) error { return c.Barrier() })
	})
}

// BenchmarkAblation_Universal compares the probe-tagged and universal
// (self-describing) request paths end to end.
func BenchmarkAblation_Universal(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	for _, universal := range []bool{false, true} {
		name := "tagged"
		if universal {
			name = "universal"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{
				Config:      irept.ForCoverage(ds.Coverage()),
				Heuristics:  core.Heuristics{Universal: universal},
				LoadBalance: true,
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(&core.MemorySource{Reads: ds.Reads}, 8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Bloom compares exact spectrum construction against the
// bloom-gated build that keeps singleton errors out of the hash tables.
func BenchmarkAblation_Bloom(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	cfg := irept.ForCoverage(ds.Coverage())
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k, t := irept.BuildSpectra(ds.Reads, cfg)
			_, _ = k, t
		}
	})
	b.Run("bloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k, t, _ := irept.BuildSpectraBloom(ds.Reads, cfg, 0.01)
			_, _ = k, t
		}
	})
}

// BenchmarkAblation_BloomFilterOps measures the raw filter.
func BenchmarkAblation_BloomFilterOps(b *testing.B) {
	f := bloom.New(1<<20, 0.01)
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Add(kmer.ID(i))
		}
	})
	b.Run("contains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Contains(kmer.ID(i))
		}
	})
}

// BenchmarkAblation_Transport measures round trips and collectives on the
// in-process transport (the TCP path is exercised in core's tests).
func BenchmarkAblation_Transport(b *testing.B) {
	b.Run("roundtrip", func(b *testing.B) {
		eps, err := transport.NewProcGroup(2)
		if err != nil {
			b.Fatal(err)
		}
		defer transport.CloseGroup(eps)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				m, err := eps[1].Recv(1)
				if err != nil {
					return
				}
				if err := eps[1].Send(0, 2, m.Data); err != nil {
					return
				}
			}
		}()
		payload := make([]byte, 9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eps[0].Send(1, 1, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := eps[0].Recv(2); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		transport.CloseGroup(eps)
		<-done
	})
}

// BenchmarkAblation_Candidates compares the quality-prioritized candidate
// search against a corrector whose quality threshold is disabled (all
// positions equal), isolating the value of quality scores.
func BenchmarkAblation_Candidates(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	run := func(b *testing.B, qualThreshold byte) {
		cfg := irept.ForCoverage(ds.Coverage())
		cfg.QualThreshold = qualThreshold
		for i := 0; i < b.N; i++ {
			if _, _, err := irept.CorrectDataset(ds.Reads, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("quality-prioritized", func(b *testing.B) { run(b, 25) })
	b.Run("quality-blind", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblation_TilesVsKmerOnly compares Reptile's tile-level
// correction against the plain k-spectrum baseline it improves on, and
// reports the accuracy gap alongside the throughput numbers.
func BenchmarkAblation_TilesVsKmerOnly(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	cfg := irept.ForCoverage(ds.Coverage())
	b.Run("tiles", func(b *testing.B) {
		var gain float64
		for i := 0; i < b.N; i++ {
			out, _, err := irept.CorrectDataset(ds.Reads, cfg)
			if err != nil {
				b.Fatal(err)
			}
			acc, err := ds.Evaluate(out)
			if err != nil {
				b.Fatal(err)
			}
			gain = acc.Gain()
		}
		b.ReportMetric(gain, "gain")
	})
	b.Run("kmer-only", func(b *testing.B) {
		var gain float64
		for i := 0; i < b.N; i++ {
			out, _, err := irept.CorrectDatasetKmerOnly(ds.Reads, cfg)
			if err != nil {
				b.Fatal(err)
			}
			acc, err := ds.Evaluate(out)
			if err != nil {
				b.Fatal(err)
			}
			gain = acc.Gain()
		}
		b.ReportMetric(gain, "gain")
	})
}

// BenchmarkSequentialCorrector is the single-rank baseline per read.
func BenchmarkSequentialCorrector(b *testing.B) {
	ds := genome.EColiSim.Scaled(0.02).Build()
	cfg := irept.ForCoverage(ds.Coverage())
	kmers, tiles := irept.BuildSpectra(ds.Reads, cfg)
	oracle := &irept.LocalOracle{Kmers: kmers, Tiles: tiles}
	c, err := irept.NewCorrector(cfg, oracle)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Read, len(ds.Reads))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &buf[i%len(buf)]
		*r = ds.Reads[i%len(ds.Reads)].Clone()
		c.CorrectRead(r)
	}
}
