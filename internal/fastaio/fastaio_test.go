package fastaio

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

// mkDataset builds n reads of varying lengths with deterministic content.
func mkDataset(t *testing.T, n int) []reads.Read {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	out := make([]reads.Read, n)
	for i := range out {
		ln := 20 + rng.Intn(30)
		b := make([]dna.Base, ln)
		q := make([]byte, ln)
		for j := range b {
			b[j] = dna.Base(rng.Intn(4))
			q[j] = byte(rng.Intn(42))
		}
		out[i] = reads.Read{Seq: int64(i + 1), Base: b, Qual: q}
	}
	return out
}

func writePair(t *testing.T, batch []reads.Read) (string, string) {
	t.Helper()
	fa, qual, err := WriteDataset(t.TempDir(), "ds", batch)
	if err != nil {
		t.Fatal(err)
	}
	return fa, qual
}

func sameRead(a, b reads.Read) bool {
	if a.Seq != b.Seq || len(a.Base) != len(b.Base) {
		return false
	}
	for i := range a.Base {
		if a.Base[i] != b.Base[i] || a.Qual[i] != b.Qual[i] {
			return false
		}
	}
	return true
}

func TestWriteReadRoundTripSingleRank(t *testing.T) {
	ds := mkDataset(t, 100)
	fa, qual := writePair(t, ds)
	got, err := ReadShard(fa, qual, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("read %d reads, want %d", len(got), len(ds))
	}
	for i := range ds {
		if !sameRead(got[i], ds[i]) {
			t.Fatalf("read %d mismatch", i)
		}
	}
}

func TestShardsPartitionWithoutOverlap(t *testing.T) {
	ds := mkDataset(t, 237)
	fa, qual := writePair(t, ds)
	for _, np := range []int{1, 2, 3, 7, 16, 64} {
		seen := map[int64]int{}
		total := 0
		for rank := 0; rank < np; rank++ {
			shard, err := ReadShard(fa, qual, rank, np)
			if err != nil {
				t.Fatalf("np=%d rank=%d: %v", np, rank, err)
			}
			for _, r := range shard {
				seen[r.Seq]++
				if !sameRead(r, ds[r.Seq-1]) {
					t.Fatalf("np=%d rank=%d: read %d corrupted", np, rank, r.Seq)
				}
			}
			total += len(shard)
		}
		if total != len(ds) {
			t.Fatalf("np=%d: shards total %d reads, want %d", np, total, len(ds))
		}
		for seq, c := range seen {
			if c != 1 {
				t.Fatalf("np=%d: read %d appeared %d times", np, seq, c)
			}
		}
	}
}

func TestShardsAreContiguousAndOrdered(t *testing.T) {
	ds := mkDataset(t, 100)
	fa, qual := writePair(t, ds)
	const np = 8
	var prevEnd int64
	for rank := 0; rank < np; rank++ {
		shard, err := ReadShard(fa, qual, rank, np)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(shard); i++ {
			if shard[i].Seq != shard[i-1].Seq+1 {
				t.Fatalf("rank %d shard not contiguous at %d", rank, i)
			}
		}
		if len(shard) > 0 {
			if shard[0].Seq <= prevEnd {
				t.Fatalf("rank %d starts at %d, before previous end %d", rank, shard[0].Seq, prevEnd)
			}
			prevEnd = shard[len(shard)-1].Seq
		}
	}
}

func TestMoreRanksThanReads(t *testing.T) {
	ds := mkDataset(t, 3)
	fa, qual := writePair(t, ds)
	const np = 16
	total := 0
	for rank := 0; rank < np; rank++ {
		shard, err := ReadShard(fa, qual, rank, np)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		total += len(shard)
	}
	if total != len(ds) {
		t.Fatalf("total %d, want %d", total, len(ds))
	}
}

func TestNextBatchChunking(t *testing.T) {
	ds := mkDataset(t, 50)
	fa, qual := writePair(t, ds)
	sr, err := OpenShard(fa, qual, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	sr.ChunkReads = 7
	total := 0
	batches := 0
	for {
		b, err := sr.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 7 {
			t.Fatalf("batch of %d exceeds chunk size", len(b))
		}
		total += len(b)
		batches++
	}
	if total != 50 || batches != 8 {
		t.Errorf("total=%d batches=%d, want 50 reads in 8 batches", total, batches)
	}
}

func TestSeekToSeq(t *testing.T) {
	ds := mkDataset(t, 200)
	fa, _ := writePair(t, ds)
	f, err := os.Open(fa)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := fileSize(f)
	for _, target := range []int64{1, 2, 57, 199, 200} {
		off, err := SeekToSeq(f, size, target)
		if err != nil {
			t.Fatalf("SeekToSeq(%d): %v", target, err)
		}
		_, seq, err := AlignToRecord(f, size, off)
		if err != nil || seq != target {
			t.Fatalf("SeekToSeq(%d) landed on %d (err %v)", target, seq, err)
		}
	}
	off, err := SeekToSeq(f, size, 500)
	if err != nil || off != size {
		t.Errorf("SeekToSeq(beyond file) = %d, %v; want %d, nil", off, err, size)
	}
}

func TestAlignToRecordAtBoundaries(t *testing.T) {
	data := ">1\nACGT\n>2\nGGTT\n"
	ra := bytes.NewReader([]byte(data))
	off, seq, err := AlignToRecord(ra, int64(len(data)), 0)
	if err != nil || off != 0 || seq != 1 {
		t.Errorf("align at 0: off=%d seq=%d err=%v", off, seq, err)
	}
	off, seq, err = AlignToRecord(ra, int64(len(data)), 1)
	if err != nil || seq != 2 {
		t.Errorf("align at 1: off=%d seq=%d err=%v", off, seq, err)
	}
	off, _, err = AlignToRecord(ra, int64(len(data)), int64(len(data))-2)
	if err != nil || off != int64(len(data)) {
		t.Errorf("align near EOF: off=%d err=%v", off, err)
	}
}

func TestScannerMultiLineBody(t *testing.T) {
	s := NewScanner(strings.NewReader(">1\nACGT\nTTAA\n>2\nGG\n"))
	rec, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(rec.Body); got != "ACGT TTAA" {
		t.Errorf("multi-line body = %q", got)
	}
	if b := parseBases(rec.Body); dna.DecodeString(b) != "ACGTTTAA" {
		t.Errorf("parseBases = %s", dna.DecodeString(b))
	}
	rec, err = s.Next()
	if err != nil || rec.Seq != 2 {
		t.Errorf("second record: %v %v", rec, err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestScannerRejectsGarbage(t *testing.T) {
	s := NewScanner(strings.NewReader("not a fasta\n"))
	if _, err := s.Next(); err == nil {
		t.Error("accepted garbage input")
	}
	s = NewScanner(strings.NewReader(">abc\nACGT\n"))
	if _, err := s.Next(); err == nil {
		t.Error("accepted non-numeric header")
	}
}

func TestParseQualRejectsBadTokens(t *testing.T) {
	if _, err := parseQual([]byte("10 20 banana")); err == nil {
		t.Error("accepted non-numeric quality")
	}
	if _, err := parseQual([]byte("10 200")); err == nil {
		t.Error("accepted out-of-range quality")
	}
}

func TestMismatchedPairDetected(t *testing.T) {
	ds := mkDataset(t, 10)
	dir := t.TempDir()
	fa := filepath.Join(dir, "a.fa")
	qual := filepath.Join(dir, "a.qual")
	ff, _ := os.Create(fa)
	if err := WriteFasta(ff, ds); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	// Quality file with different sequence numbers.
	shifted := make([]reads.Read, len(ds))
	copy(shifted, ds)
	for i := range shifted {
		shifted[i].Seq += 100
	}
	qf, _ := os.Create(qual)
	if err := WriteQual(qf, shifted); err != nil {
		t.Fatal(err)
	}
	qf.Close()
	if _, err := ReadShard(fa, qual, 0, 1); err == nil {
		t.Error("accepted fasta/qual sequence number mismatch")
	}
}

func TestOpenShardErrorsAndBounds(t *testing.T) {
	ds := mkDataset(t, 20)
	fa, qual := writePair(t, ds)
	if _, err := OpenShard(fa, qual, -1, 4); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := OpenShard(fa, qual, 4, 4); err == nil {
		t.Error("rank == np accepted")
	}
	if _, err := OpenShard(fa, qual+".missing", 0, 2); err == nil {
		t.Error("missing quality file accepted")
	}
	if _, err := OpenShard(fa+".missing", qual, 0, 2); err == nil {
		t.Error("missing fasta file accepted")
	}
	sr, err := OpenShard(fa, qual, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	start, end := sr.Bounds()
	if start <= 1 || end <= start {
		t.Errorf("Bounds = [%d, %d)", start, end)
	}
	all, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) == 0 || all[0].Seq != start {
		t.Errorf("shard starts at %d, Bounds said %d", all[0].Seq, start)
	}
}

func TestConvertFastq(t *testing.T) {
	fq := "@r1\nACGT\n+\nIIII\n@r2\nGGTT\n+\n!!!!\n"
	var fa, qual bytes.Buffer
	n, err := ConvertFastq(strings.NewReader(fq), &fa, &qual, 33)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("converted %d records", n)
	}
	if got := fa.String(); got != ">1\nACGT\n>2\nGGTT\n" {
		t.Errorf("fasta = %q", got)
	}
	if got := qual.String(); got != ">1\n40 40 40 40\n>2\n0 0 0 0\n" {
		t.Errorf("qual = %q", got)
	}
}

func TestConvertFastqErrors(t *testing.T) {
	cases := []string{
		"r1\nACGT\n+\nIIII\n",   // missing @
		"@r1\nACGT\nX\nIIII\n",  // bad separator
		"@r1\nACGT\n+\nIII\n",   // qual length mismatch
		"@r1\nACGT\n+\n\x20!!!", // qual char below offset
	}
	for i, fq := range cases {
		var fa, qual bytes.Buffer
		if _, err := ConvertFastq(strings.NewReader(fq), &fa, &qual, 33); err == nil {
			t.Errorf("case %d accepted malformed fastq", i)
		}
	}
}

func TestConvertedFastqReadableByShardReader(t *testing.T) {
	fq := "@a\nACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIII\n" +
		"@b\nTTTTACGTACGTACGTACGTGGGG\n+\nHHHHHHHHHHHHHHHHHHHHHHHH\n"
	dir := t.TempDir()
	faPath := filepath.Join(dir, "c.fa")
	qualPath := filepath.Join(dir, "c.qual")
	faF, _ := os.Create(faPath)
	qualF, _ := os.Create(qualPath)
	if _, err := ConvertFastq(strings.NewReader(fq), faF, qualF, 33); err != nil {
		t.Fatal(err)
	}
	faF.Close()
	qualF.Close()
	got, err := ReadShard(faPath, qualPath, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Qual[0] != 40 || got[1].Qual[0] != 39 {
		t.Errorf("round trip through fastq conversion failed: %+v", got)
	}
}
