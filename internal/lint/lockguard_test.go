package lint

import "testing"

func TestLockGuardGolden(t *testing.T) {
	runGolden(t, NewLockGuard(), "lockguard", "reptile/internal/lint/testdata/lockguard")
}

// TestLockGuardCleanPass pins that a fully disciplined package yields zero
// diagnostics: the transport package itself, whose mailbox is the original
// annotated struct.
func TestLockGuardCleanPass(t *testing.T) {
	pkg, err := LoadDir("../transport", "reptile/internal/transport")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewLockGuard()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
