package spectrum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reptile/internal/kmer"
)

func TestHashStoreAddCount(t *testing.T) {
	h := NewHash(0)
	if _, ok := h.Count(1); ok {
		t.Error("empty store reported presence")
	}
	h.Add(1, 1)
	h.Add(1, 2)
	h.Add(2, 5)
	if c, ok := h.Count(1); !ok || c != 3 {
		t.Errorf("Count(1) = %d,%v want 3,true", c, ok)
	}
	if c, ok := h.Count(2); !ok || c != 5 {
		t.Errorf("Count(2) = %d,%v want 5,true", c, ok)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHashStorePrune(t *testing.T) {
	h := NewHash(0)
	for i := kmer.ID(0); i < 10; i++ {
		h.Add(i, uint32(i))
	}
	removed := h.Prune(5)
	if removed != 5 { // counts 0..4
		t.Errorf("Prune removed %d, want 5", removed)
	}
	if h.Len() != 5 {
		t.Errorf("Len after prune = %d, want 5", h.Len())
	}
	if _, ok := h.Count(3); ok {
		t.Error("pruned entry still present")
	}
	if c, ok := h.Count(7); !ok || c != 7 {
		t.Error("surviving entry lost")
	}
}

func TestHashStoreDeleteClear(t *testing.T) {
	h := NewHash(0)
	h.Add(9, 1)
	h.Delete(9)
	if h.Len() != 0 {
		t.Error("Delete did not remove")
	}
	h.Add(1, 1)
	h.Add(2, 1)
	h.Clear()
	if h.Len() != 0 {
		t.Error("Clear left entries")
	}
}

func TestEntriesSorted(t *testing.T) {
	h := NewHash(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(kmer.ID(rng.Uint64()), 1)
	}
	es := h.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].ID <= es[i-1].ID {
			t.Fatalf("Entries not strictly sorted at %d", i)
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	h := NewHash(0)
	for i := kmer.ID(0); i < 100; i++ {
		h.Add(i, 1)
	}
	n := 0
	h.Each(func(Entry) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("Each visited %d entries after early stop", n)
	}
}

// buildRandom returns a HashStore with n random entries plus the entry list.
func buildRandom(n int, seed int64) (*HashStore, []Entry) {
	h := NewHash(n)
	rng := rand.New(rand.NewSource(seed))
	for h.Len() < n {
		h.Add(kmer.ID(rng.Uint64()), uint32(rng.Intn(100)+1))
	}
	return h, h.Entries()
}

func TestSortedStoreMatchesHash(t *testing.T) {
	h, es := buildRandom(5000, 2)
	s := NewSorted(es)
	if s.Len() != h.Len() {
		t.Fatalf("Len = %d, want %d", s.Len(), h.Len())
	}
	for _, e := range es[:500] {
		if c, ok := s.Count(e.ID); !ok || c != e.Count {
			t.Fatalf("SortedStore.Count(%v) = %d,%v want %d,true", e.ID, c, ok, e.Count)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		id := kmer.ID(rng.Uint64())
		wc, wok := h.Count(id)
		if c, ok := s.Count(id); ok != wok || c != wc {
			t.Fatalf("mismatch on random id %v", id)
		}
	}
}

func TestCacheAwareMatchesHash(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 65, 1000, 4096} {
		h, es := buildRandom(n, int64(n)+10)
		c := NewCacheAware(es)
		if c.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, c.Len())
		}
		for _, e := range es {
			if got, ok := c.Count(e.ID); !ok || got != e.Count {
				t.Fatalf("n=%d: Count(%v) = %d,%v want %d,true", n, e.ID, got, ok, e.Count)
			}
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 200; i++ {
			id := kmer.ID(rng.Uint64())
			wc, wok := h.Count(id)
			if got, ok := c.Count(id); ok != wok || got != wc {
				t.Fatalf("n=%d: random id %v: got %d,%v want %d,%v", n, id, got, ok, wc, wok)
			}
		}
	}
}

func TestCacheAwareSentinelID(t *testing.T) {
	// The all-ones ID is a legal tile; the store must handle it despite
	// using it as padding internally.
	max := ^kmer.ID(0)
	c := NewCacheAware([]Entry{{ID: 5, Count: 2}, {ID: max, Count: 9}})
	if got, ok := c.Count(max); !ok || got != 9 {
		t.Fatalf("Count(max) = %d,%v", got, ok)
	}
	if got, ok := c.Count(5); !ok || got != 2 {
		t.Fatalf("Count(5) = %d,%v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// And absence of the max ID is reported correctly.
	c2 := NewCacheAware([]Entry{{ID: 5, Count: 2}})
	if _, ok := c2.Count(max); ok {
		t.Error("Count(max) false positive")
	}
}

func TestNewSortedRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSorted accepted unsorted input")
		}
	}()
	NewSorted([]Entry{{ID: 2}, {ID: 1}})
}

func TestEncodeDecodeEntries(t *testing.T) {
	_, es := buildRandom(257, 5)
	wire := EncodeEntries(nil, es)
	if len(wire) != len(es)*EntrySize {
		t.Fatalf("wire length %d", len(wire))
	}
	back, err := DecodeEntries(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range es {
		if back[i] != es[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestDecodeEntriesBadLength(t *testing.T) {
	if _, err := DecodeEntries(make([]byte, 13)); err == nil {
		t.Error("DecodeEntries accepted a ragged buffer")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(ids []uint64, counts []uint32) bool {
		n := len(ids)
		if len(counts) < n {
			n = len(counts)
		}
		es := make([]Entry, n)
		for i := 0; i < n; i++ {
			es[i] = Entry{ID: kmer.ID(ids[i]), Count: counts[i]}
		}
		back, err := DecodeEntries(EncodeEntries(nil, es))
		if err != nil || len(back) != n {
			return false
		}
		for i := range es {
			if back[i] != es[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemBytesOrdering(t *testing.T) {
	_, es := buildRandom(10000, 8)
	h := NewHash(0)
	for _, e := range es {
		h.Add(e.ID, e.Count)
	}
	s := NewSorted(es)
	c := NewCacheAware(es)
	if h.MemBytes() <= s.MemBytes() {
		t.Errorf("hash store (%d) should cost more than sorted array (%d)", h.MemBytes(), s.MemBytes())
	}
	if c.MemBytes() < s.MemBytes() {
		t.Errorf("cache-aware (%d) should pad above sorted (%d)", c.MemBytes(), s.MemBytes())
	}
}
