package fastaio

import (
	"fmt"
	"io"
	"math"
	"os"
)

// PartitionOffset returns rank's proportional byte offset into a file of the
// given size: the paper's "file size divided by the number of ranks" start
// point (Step I).
func PartitionOffset(size int64, rank, np int) int64 {
	return size * int64(rank) / int64(np)
}

// AlignToRecord scans forward from off for the next record boundary (a '>'
// at offset 0 or immediately after a newline) and returns the boundary
// offset together with that record's sequence number. It returns
// (size, 0, nil) when no record starts at or after off.
func AlignToRecord(ra io.ReaderAt, size, off int64) (recOff int64, seq int64, err error) {
	if off >= size {
		return size, 0, nil
	}
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	// Back up one byte so a '>' exactly at off preceded by '\n' is found,
	// and so off==0 is handled uniformly.
	searchStart := off
	prevNewline := off == 0
	if off > 0 {
		searchStart = off - 1
	}
	for pos := searchStart; pos < size; {
		n, rerr := ra.ReadAt(buf[:min64(chunk, size-pos)], pos)
		if n == 0 && rerr != nil && rerr != io.EOF {
			return 0, 0, rerr
		}
		for i := 0; i < n; i++ {
			c := buf[i]
			at := pos + int64(i)
			if c == '>' && (prevNewline || at == 0) && at >= off {
				s, err := readSeqAt(ra, size, at)
				if err != nil {
					return 0, 0, err
				}
				return at, s, nil
			}
			prevNewline = c == '\n'
		}
		pos += int64(n)
		if rerr == io.EOF {
			break
		}
	}
	return size, 0, nil
}

// readSeqAt parses the integer header of the record starting at off (which
// must point at '>').
func readSeqAt(ra io.ReaderAt, size, off int64) (int64, error) {
	var buf [32]byte
	n, err := ra.ReadAt(buf[:min64(int64(len(buf)), size-off)], off)
	if n == 0 && err != nil && err != io.EOF {
		return 0, err
	}
	if n == 0 || buf[0] != '>' {
		return 0, fmt.Errorf("fastaio: no record at offset %d", off)
	}
	v := int64(0)
	got := false
	for _, c := range buf[1:n] {
		if c >= '0' && c <= '9' {
			v = v*10 + int64(c-'0')
			got = true
			continue
		}
		break
	}
	if !got {
		return 0, fmt.Errorf("fastaio: non-numeric header at offset %d", off)
	}
	return v, nil
}

// SeekToSeq finds the byte offset of the record whose sequence number is
// target, by binary search over byte offsets (sequence numbers ascend with
// file position). It returns size when target is beyond the last record.
func SeekToSeq(ra io.ReaderAt, size, target int64) (int64, error) {
	lo, hi := int64(0), size // invariant: record(target) starts at >= lo
	for lo < hi {
		mid := lo + (hi-lo)/2
		off, seq, err := AlignToRecord(ra, size, mid)
		if err != nil {
			return 0, err
		}
		if off >= size || seq >= target {
			hi = mid
		} else {
			lo = off + 1 // the record at off has seq < target
		}
	}
	off, seq, err := AlignToRecord(ra, size, lo)
	if err != nil {
		return 0, err
	}
	if off >= size {
		return size, nil
	}
	if seq != target {
		return 0, fmt.Errorf("fastaio: sequence %d not found (nearest at %d is %d)", target, off, seq)
	}
	return off, nil
}

// ShardBounds computes the [startSeq, endSeq) sequence-number range rank is
// responsible for in the fasta file, per the paper's Step I. endSeq is
// math.MaxInt64 for the last rank.
func ShardBounds(ra io.ReaderAt, size int64, rank, np int) (startSeq, endSeq int64, err error) {
	_, startSeq, err = AlignToRecord(ra, size, PartitionOffset(size, rank, np))
	if err != nil {
		return 0, 0, err
	}
	if startSeq == 0 { // aligned past EOF: empty shard
		return math.MaxInt64, math.MaxInt64, nil
	}
	if rank == np-1 {
		return startSeq, math.MaxInt64, nil
	}
	off, next, err := AlignToRecord(ra, size, PartitionOffset(size, rank+1, np))
	if err != nil {
		return 0, 0, err
	}
	if off >= size || next == 0 {
		return startSeq, math.MaxInt64, nil
	}
	return startSeq, next, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// fileSize returns the size of an *os.File-backed ReaderAt.
func fileSize(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
