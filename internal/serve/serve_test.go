package serve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"reptile/internal/core"
	"reptile/internal/dna"
	"reptile/internal/genome"
	"reptile/internal/kmer"
	"reptile/internal/reads"
	"reptile/internal/reptile"
	"reptile/internal/serve"
	"reptile/internal/transport"
)

// testDataset builds a small simulated dataset with a matching config.
func testDataset(t testing.TB, nReads int, seed int64) (*genome.Dataset, core.Options) {
	t.Helper()
	g := genome.NewGenome(8000, seed)
	ds := genome.Simulate("serve-test", g, nReads, genome.DefaultProfile(70), seed+1)
	cfg := reptile.ForCoverage(ds.Coverage())
	cfg.Spec = kmer.Spec{K: 10, Overlap: 4}
	return ds, core.Options{Config: cfg, LoadBalance: true}
}

// referenceMap corrects the dataset through the classic batch engine and
// indexes the corrected bases by sequence number: the byte-identity oracle
// every served session is checked against.
func referenceMap(t *testing.T, ds *genome.Dataset, np int, opts core.Options) map[int64]string {
	t.Helper()
	out, err := core.Run(&core.MemorySource{Reads: ds.Reads}, np, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int64]string, len(ds.Reads))
	for _, r := range out.Corrected() {
		ref[r.Seq] = dna.DecodeString(r.Base)
	}
	return ref
}

// checkCorrected asserts every served read matches the batch reference.
func checkCorrected(t *testing.T, got []reads.Read, want map[int64]string) {
	t.Helper()
	for _, r := range got {
		if dna.DecodeString(r.Base) != want[r.Seq] {
			t.Fatalf("read %d differs from the batch engine's correction", r.Seq)
		}
	}
}

// group is one resident service rank group over proc endpoints: rank 0's
// handle is the front, ranks 1.. run as pure executors in the background.
type group struct {
	t    *testing.T
	np   int
	eps  []*transport.Endpoint
	svc  *core.SpectrumService
	wg   sync.WaitGroup
	outs []*core.RankOutput
	errs []error
}

func startGroup(t *testing.T, np int, opts core.Options, rs []reads.Read) *group {
	t.Helper()
	eps, err := transport.NewProcGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { transport.CloseGroup(eps) })
	svcs := make([]*core.SpectrumService, np)
	serrs := make([]error, np)
	var swg sync.WaitGroup
	for r := 0; r < np; r++ {
		swg.Add(1)
		go func(r int) {
			defer swg.Done()
			svcs[r], serrs[r] = core.StartService(eps[r], &core.MemorySource{Reads: rs}, opts)
		}(r)
	}
	swg.Wait()
	for r, err := range serrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	g := &group{t: t, np: np, eps: eps, svc: svcs[0], outs: make([]*core.RankOutput, np), errs: make([]error, np)}
	for r := 1; r < np; r++ {
		g.wg.Add(1)
		go func(r int) {
			defer g.wg.Done()
			g.outs[r], g.errs[r] = svcs[r].ServeExecutor()
		}(r)
	}
	return g
}

// drain ends the group through the coordinator handle and joins the
// executors; their per-rank errors stay in g.errs for the test to inspect.
func (g *group) drain() (*core.RankOutput, error) {
	out, err := g.svc.Drain()
	g.wg.Wait()
	return out, err
}

// within fails the test if fn does not finish inside d — the drain paths
// under test must terminate, never hang.
func within(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(what + " did not finish in time")
	}
}

// TestServedOutputMatchesBatch is the front-door identity check: concurrent
// TCP clients each correct the full dataset through a resident 2-rank
// service, and every served read must be byte-identical to what a classic
// reptile-correct batch run produces. It doubles as the smoke sequence —
// start, concurrent clients, graceful drain.
func TestServedOutputMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short: heavyweight end-to-end run (race CI budget)")
	}
	ds, opts := testDataset(t, 1500, 310)
	const np = 2
	ref := referenceMap(t, ds, np, opts)

	g := startGroup(t, np, opts, ds.Reads)
	srv, err := serve.Listen("127.0.0.1:0", g.svc)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 3
	var cwg sync.WaitGroup
	cerrs := make([]error, clients)
	couts := make([][]reads.Read, clients)
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			cerrs[i] = func() error {
				cl, err := serve.Dial(srv.Addr())
				if err != nil {
					return err
				}
				defer cl.Close()
				if err := cl.Open("tenant-" + string(rune('a'+i))); err != nil {
					return err
				}
				for lo := 0; lo < len(ds.Reads); lo += 256 {
					hi := lo + 256
					if hi > len(ds.Reads) {
						hi = len(ds.Reads)
					}
					out, _, err := cl.Correct(ds.Reads[lo:hi])
					if err != nil {
						return err
					}
					couts[i] = append(couts[i], out...)
				}
				return cl.CloseSession()
			}()
		}(i)
	}
	cwg.Wait()
	for i, err := range cerrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := range couts {
		if len(couts[i]) != len(ds.Reads) {
			t.Fatalf("client %d got %d reads back, submitted %d", i, len(couts[i]), len(ds.Reads))
		}
		checkCorrected(t, couts[i], ref)
	}

	sv := g.svc.Stats()
	if sv.Sessions != clients {
		t.Errorf("service counted %d completed sessions, want %d", sv.Sessions, clients)
	}

	var out0 *core.RankOutput
	within(t, 60*time.Second, "graceful drain", func() {
		srv.Shutdown()
		var err error
		if out0, err = g.drain(); err != nil {
			t.Error(err)
		}
	})
	for r, err := range g.errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	// Stats().Reads is this rank's executor only; the group-wide count is the
	// sum over the drained rank outputs.
	var served int64
	if out0 != nil {
		served = out0.Stats.SessionReads
	}
	for _, o := range g.outs[1:] {
		if o != nil {
			served += o.Stats.SessionReads
		}
	}
	if served != int64(clients*len(ds.Reads)) {
		t.Errorf("rank executors served %d reads, want %d", served, clients*len(ds.Reads))
	}
}

// TestOverCapOpenRejected covers the per-tenant admission cap through both
// surfaces: the in-process handle (proc) and a TCP client. The rejection
// must be the typed capacity error, and closing a session must free the
// slot again.
func TestOverCapOpenRejected(t *testing.T) {
	ds, opts := testDataset(t, 600, 320)
	opts.Serve = &core.ServeOptions{MaxSessions: 1}
	const np = 2
	g := startGroup(t, np, opts, ds.Reads)

	// Proc surface: a second open for the same tenant at the same executor.
	s1, err := g.svc.OpenAt(1, "capped")
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.svc.OpenAt(1, "capped")
	if !errors.Is(err, core.ErrSessionRejected) {
		t.Fatalf("over-cap open returned %v, want a typed session rejection", err)
	}
	var serr *core.SessionError
	if !errors.As(err, &serr) || serr.Kind != core.SessionRejectCapacity {
		t.Fatalf("over-cap open returned %v, want kind capacity", err)
	}
	// A different tenant is not affected by this tenant's cap.
	other, err := g.svc.OpenAt(1, "other")
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := g.svc.OpenAt(1, "capped")
	if err != nil {
		t.Fatalf("open after close rejected: %v — the admission slot was not freed", err)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}

	// TCP surface: opens round-robin rank 0, rank 1, rank 0 — the third
	// client lands on rank 0's full tenant slot and must see the same typed
	// error a local caller gets.
	srv, err := serve.Listen("127.0.0.1:0", g.svc)
	if err != nil {
		t.Fatal(err)
	}
	var cls []*serve.Client
	defer func() {
		for _, cl := range cls {
			cl.Close()
		}
	}()
	dial := func() *serve.Client {
		cl, err := serve.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cls = append(cls, cl)
		return cl
	}
	a, b, c := dial(), dial(), dial()
	if err := a.Open("wire-capped"); err != nil {
		t.Fatal(err)
	}
	if err := b.Open("wire-capped"); err != nil {
		t.Fatal(err)
	}
	err = c.Open("wire-capped")
	if !errors.Is(err, core.ErrSessionRejected) {
		t.Fatalf("TCP over-cap open returned %v, want a typed session rejection", err)
	}
	serr = nil
	if !errors.As(err, &serr) || serr.Kind != core.SessionRejectCapacity {
		t.Fatalf("TCP over-cap open returned %v, want kind capacity", err)
	}
	if err := a.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseSession(); err != nil {
		t.Fatal(err)
	}
	// Shutdown waits for connected clients, so disconnect them first.
	for _, cl := range cls {
		cl.Close()
	}
	cls = nil

	within(t, 60*time.Second, "drain", func() {
		srv.Shutdown()
		if _, err := g.drain(); err != nil {
			t.Error(err)
		}
	})
}

// TestDrainCompletesInFlightSession: a session caught mid-flight by Drain
// runs to completion with byte-identical output, while new opens are
// rejected with the typed draining error.
func TestDrainCompletesInFlightSession(t *testing.T) {
	ds, opts := testDataset(t, 900, 330)
	const np = 2
	ref := referenceMap(t, ds, np, opts)
	g := startGroup(t, np, opts, ds.Reads)

	sess, err := g.svc.OpenAt(1, "inflight")
	if err != nil {
		t.Fatal(err)
	}
	chunk := ds.Reads[:300]
	p, err := sess.Submit(chunk)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		_, err := g.drain()
		drained <- err
	}()

	// Drain must start rejecting opens while the submitted chunk is still
	// outstanding; poll until the draining flag is visible.
	deadline := time.Now().Add(10 * time.Second)
	for {
		late, err := g.svc.OpenAt(0, "late")
		if err != nil {
			var serr *core.SessionError
			if !errors.As(err, &serr) || serr.Kind != core.SessionRejectDraining {
				t.Fatalf("open during drain returned %v, want kind draining", err)
			}
			break
		}
		// Drain has not set the flag yet; close the probe session (a leaked
		// open would stall the drain forever) and retry.
		if err := late.Close(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting opens")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rs, _, err := p.Wait()
	if err != nil {
		t.Fatalf("in-flight chunk failed under drain: %v", err)
	}
	if len(rs) != len(chunk) {
		t.Fatalf("in-flight chunk returned %d reads, submitted %d", len(rs), len(chunk))
	}
	checkCorrected(t, rs, ref)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	within(t, 60*time.Second, "drain", func() {
		if err := <-drained; err != nil {
			t.Fatal(err)
		}
	})
}

// TestClientDisconnectFreesAdmission: a TCP client that vanishes
// mid-session (no session close, no connection shutdown handshake) must
// have its session closed by the server, freeing the tenant's admission
// slot and window for the next client.
func TestClientDisconnectFreesAdmission(t *testing.T) {
	ds, opts := testDataset(t, 600, 340)
	opts.Serve = &core.ServeOptions{MaxSessions: 1}
	const np = 1 // single executor: every open lands on the same cap
	g := startGroup(t, np, opts, ds.Reads)
	srv, err := serve.Listen("127.0.0.1:0", g.svc)
	if err != nil {
		t.Fatal(err)
	}

	a, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Open("flaky"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Correct(ds.Reads[:100]); err != nil {
		t.Fatal(err)
	}
	// Vanish without closing the session: the server's connection teardown
	// must retire it.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := b.Open("flaky")
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrSessionRejected) {
			t.Fatalf("open returned %v, want success or a capacity rejection while the slot frees", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after the client disconnected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, _, err := b.Correct(ds.Reads[:100]); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseSession(); err != nil {
		t.Fatal(err)
	}
	// Shutdown waits for connected clients, so disconnect first.
	b.Close()

	within(t, 60*time.Second, "drain", func() {
		srv.Shutdown()
		if _, err := g.drain(); err != nil {
			t.Error(err)
		}
	})
}

// TestRankDeathAfterCompletedSession is the session-durability regression:
// output a client was acknowledged for (its session closed cleanly) must
// survive a rank dying afterwards — the death fails new work and the drain,
// but never the already-delivered corrections.
func TestRankDeathAfterCompletedSession(t *testing.T) {
	ds, opts := testDataset(t, 900, 350)
	const np = 2
	ref := referenceMap(t, ds, np, opts)
	g := startGroup(t, np, opts, ds.Reads)

	// Complete a session at the rank that is about to die.
	sess, err := g.svc.OpenAt(1, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	chunk := ds.Reads[:400]
	delivered, _, err := sess.Correct(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill rank 1. Everything already acknowledged must stand; everything
	// new must fail fast.
	g.eps[1].Close()

	if _, err := g.svc.OpenAt(1, "late"); err == nil {
		t.Error("open at the dead rank succeeded")
	}

	within(t, 60*time.Second, "drain after rank death", func() {
		if _, err := g.drain(); err == nil {
			t.Error("drain reported success despite a dead rank")
		}
	})

	// The acknowledged output is untouched by the teardown: still exactly
	// what the batch engine would have produced.
	if len(delivered) != len(chunk) {
		t.Fatalf("delivered %d reads, submitted %d", len(delivered), len(chunk))
	}
	checkCorrected(t, delivered, ref)
}
