package dna

import "fmt"

// Packed is a 2-bit-per-base packed DNA sequence. It stores up to 4 bases
// per byte, which is the layout the genome simulator uses to hold reference
// genomes compactly (a 2 Mb genome fits in 500 kB).
type Packed struct {
	data []byte
	n    int
}

// NewPacked packs seq into a Packed sequence.
func NewPacked(seq []Base) *Packed {
	p := &Packed{
		data: make([]byte, (len(seq)+3)/4),
		n:    len(seq),
	}
	for i, b := range seq {
		p.data[i>>2] |= byte(b) << uint((i&3)*2)
	}
	return p
}

// Len returns the number of bases.
func (p *Packed) Len() int { return p.n }

// At returns the base at position i. It panics when i is out of range.
func (p *Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: Packed.At(%d) out of range [0,%d)", i, p.n))
	}
	return Base(p.data[i>>2] >> uint((i&3)*2) & 3)
}

// Set overwrites the base at position i.
func (p *Packed) Set(i int, b Base) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: Packed.Set(%d) out of range [0,%d)", i, p.n))
	}
	shift := uint((i & 3) * 2)
	p.data[i>>2] = p.data[i>>2]&^(3<<shift) | byte(b)<<shift
}

// Slice copies bases [from, to) into dst, which must have length to-from.
// It returns dst for chaining. Slice panics on an out-of-range window.
func (p *Packed) Slice(dst []Base, from, to int) []Base {
	if from < 0 || to > p.n || from > to {
		panic(fmt.Sprintf("dna: Packed.Slice(%d,%d) out of range [0,%d]", from, to, p.n))
	}
	if len(dst) != to-from {
		panic(fmt.Sprintf("dna: Packed.Slice dst length %d != window %d", len(dst), to-from))
	}
	for i := from; i < to; i++ {
		dst[i-from] = p.At(i)
	}
	return dst
}

// Unpack returns the whole sequence as a fresh []Base.
func (p *Packed) Unpack() []Base {
	out := make([]Base, p.n)
	return p.Slice(out, 0, p.n)
}

// Bytes returns the packed backing bytes (4 bases/byte, little-endian within
// the byte). The caller must not mutate the result.
func (p *Packed) Bytes() []byte { return p.data }

// MemBytes returns the approximate heap footprint in bytes.
func (p *Packed) MemBytes() int { return len(p.data) + 16 }
