package lint

import "testing"

func TestNoSleepSyncGolden(t *testing.T) {
	// The fixture rides under a pretend transport import path so the
	// default path scoping engages.
	runGolden(t, NewNoSleepSync(), "nosleepsync", "reptile/internal/transport/fixture")
}

// TestNoSleepSyncPathScoping pins that the analyzer ignores packages
// outside the runtime: the same sleepy fixture under a non-runtime import
// path yields nothing.
func TestNoSleepSyncPathScoping(t *testing.T) {
	pkg, err := LoadDir("testdata/nosleepsync", "reptile/internal/genome")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []Analyzer{NewNoSleepSync()}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}
