// Package genome generates synthetic genomes and Illumina-like short-read
// datasets with known ground truth.
//
// The paper evaluates on E.Coli, Drosophila and human Illumina runs that we
// cannot ship; this package builds scaled-down synthetic equivalents that
// preserve what the algorithm actually sees: read length, coverage, a
// quality profile that decays along the read, substitution errors at rate
// 10^(-Q/10), and — crucially for the load-balancing experiment (Fig 4) —
// the option to cluster high-error reads in contiguous stretches of the
// file order, which is what causes the paper's rank imbalance.
package genome

import (
	"fmt"
	"math"
	"math/rand"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

// Genome is a reference sequence stored 2-bit packed.
type Genome struct {
	Seq *dna.Packed
}

// NewGenome builds a random genome of the given size with a sprinkling of
// long repeats (real genomes are repetitive, which stresses the spectra with
// high-count k-mers).
func NewGenome(size int, seed int64) *Genome {
	if size < 1 {
		panic(fmt.Sprintf("genome: size %d < 1", size))
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make([]dna.Base, size)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(dna.NumBases))
	}
	// Copy a few blocks around to create repeats (~2% of the genome).
	repeatLen := size / 100
	if repeatLen > 2000 {
		repeatLen = 2000
	}
	if repeatLen >= 10 {
		for r := 0; r < 2; r++ {
			src := rng.Intn(size - repeatLen)
			dst := rng.Intn(size - repeatLen)
			copy(seq[dst:dst+repeatLen], seq[src:src+repeatLen])
		}
	}
	return &Genome{Seq: dna.NewPacked(seq)}
}

// Len returns the genome length in bases.
func (g *Genome) Len() int { return g.Seq.Len() }

// Profile controls read simulation.
type Profile struct {
	ReadLen int     // bases per read
	QStart  float64 // mean Phred quality at the first base
	QEnd    float64 // mean Phred quality at the last base
	QNoise  float64 // stddev of per-base quality jitter
	// ErrorBoost scales the physical error rate relative to the quality
	// model 10^(-Q/10); 1.0 means quality scores are perfectly calibrated.
	ErrorBoost float64
	// LocalizedSpans marks contiguous fractions of the *file order* whose
	// reads get LocalizedBoost-times the base error rate, reproducing the
	// paper's observation that "errors appear localized in several parts of
	// the file". Each span is [start, end) as a fraction of the dataset.
	LocalizedSpans [][2]float64
	LocalizedBoost float64
}

// DefaultProfile mirrors a healthy Illumina run: Q38 falling to Q22.
func DefaultProfile(readLen int) Profile {
	return Profile{
		ReadLen:    readLen,
		QStart:     38,
		QEnd:       22,
		QNoise:     3,
		ErrorBoost: 1.0,
	}
}

// LocalizedProfile is DefaultProfile plus two degraded stretches covering
// ~25% of the file with 8x the error rate — the imbalanced-input scenario.
func LocalizedProfile(readLen int) Profile {
	p := DefaultProfile(readLen)
	p.LocalizedSpans = [][2]float64{{0.10, 0.22}, {0.60, 0.73}}
	p.LocalizedBoost = 8
	return p
}

// ErrorSite records one injected substitution: the read position and the
// true genomic base that was overwritten.
type ErrorSite struct {
	Pos  int
	True dna.Base
}

// Dataset is a simulated read set with ground truth.
type Dataset struct {
	Name    string
	Genome  *Genome
	Reads   []reads.Read
	Truth   [][]ErrorSite // Truth[i] are the injected errors of Reads[i]
	Pos     []int         // Pos[i] is the genomic start of Reads[i]
	Profile Profile
}

// NumReads returns the dataset size.
func (d *Dataset) NumReads() int { return len(d.Reads) }

// TotalErrors returns the number of injected substitution errors.
func (d *Dataset) TotalErrors() int {
	n := 0
	for _, t := range d.Truth {
		n += len(t)
	}
	return n
}

// Coverage returns length*reads/genomeSize, the figure in Table I.
func (d *Dataset) Coverage() float64 {
	return float64(d.Profile.ReadLen) * float64(len(d.Reads)) / float64(d.Genome.Len())
}

// Simulate draws n reads from g under profile p. Reads are numbered 1..n in
// file order; strand is always forward so a corrected read can be compared
// base-for-base against the genome window it came from.
func Simulate(name string, g *Genome, n int, p Profile, seed int64) *Dataset {
	if p.ReadLen < 1 || p.ReadLen > g.Len() {
		panic(fmt.Sprintf("genome: read length %d vs genome %d", p.ReadLen, g.Len()))
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		Name:    name,
		Genome:  g,
		Reads:   make([]reads.Read, n),
		Truth:   make([][]ErrorSite, n),
		Pos:     make([]int, n),
		Profile: p,
	}
	window := make([]dna.Base, p.ReadLen)
	for i := 0; i < n; i++ {
		pos := rng.Intn(g.Len() - p.ReadLen + 1)
		ds.Pos[i] = pos
		g.Seq.Slice(window, pos, pos+p.ReadLen)
		r := reads.Read{
			Seq:  int64(i + 1),
			Base: make([]dna.Base, p.ReadLen),
			Qual: make([]byte, p.ReadLen),
		}
		copy(r.Base, window)
		boost := p.ErrorBoost
		if b := p.localBoost(i, n); b > 0 {
			boost *= b
		}
		injectErrors(&r, ds, i, boost, p, rng)
		ds.Reads[i] = r
	}
	return ds
}

// injectErrors assigns the quality profile to r and injects substitution
// errors at rate boost*10^(-Q/10), recording ground truth in ds.Truth[idx].
func injectErrors(r *reads.Read, ds *Dataset, idx int, boost float64, p Profile, rng *rand.Rand) {
	for j := 0; j < p.ReadLen; j++ {
		frac := float64(j) / float64(p.ReadLen-1)
		if p.ReadLen == 1 {
			frac = 0
		}
		q := p.QStart + (p.QEnd-p.QStart)*frac + rng.NormFloat64()*p.QNoise
		if q < 2 {
			q = 2
		}
		if q > 41 {
			q = 41
		}
		r.Qual[j] = byte(math.Round(q))
		errProb := boost * math.Pow(10, -q/10)
		if errProb > 0.5 {
			errProb = 0.5
		}
		if rng.Float64() < errProb {
			truth := r.Base[j]
			r.Base[j] = dna.Base((int(truth) + 1 + rng.Intn(3)) % dna.NumBases)
			ds.Truth[idx] = append(ds.Truth[idx], ErrorSite{Pos: j, True: truth})
		}
	}
}

// localBoost returns the localized error multiplier for read index i of n,
// or 0 when i is outside every span.
func (p Profile) localBoost(i, n int) float64 {
	frac := float64(i) / float64(n)
	for _, span := range p.LocalizedSpans {
		if frac >= span[0] && frac < span[1] {
			return p.LocalizedBoost
		}
	}
	return 0
}
