package core

import (
	"fmt"
	"sync"
	"time"

	"reptile/internal/stats"
	"reptile/internal/transport"
)

// SpectrumService is the resident half of the split lifecycle (DESIGN.md
// §17): StartService runs the build phases once — read, balance, snapshot
// probe, spectrum construction, post-construction exchanges — freezes the
// spectra, and arms the correct-phase machinery (router, dispatcher,
// prefetch plane, session executor), then keeps it all alive so any number
// of correction sessions can multiplex onto the rank group. Drain is the
// graceful end: new opens are rejected with the typed draining error,
// admitted sessions complete, and the done/stop protocol tears the group
// down together.
//
// Like RunRank, every rank of the group runs its own StartService
// concurrently; sessions may be opened from any rank's handle and execute
// at any rank. Drain blocks until the whole group quiesces, so a pure
// executor rank (one that never opens sessions of its own, like
// reptile-serve's non-front-door ranks) simply calls ServeExecutor right
// away and serves until the coordinator's stop.
type SpectrumService struct {
	ctx   *rankCtx
	plane *residentPlane
	armed time.Time

	mu       sync.Mutex
	cond     *sync.Cond      // guarded by mu; signaled when an open session closes
	draining bool            // guarded by mu
	open     int             // guarded by mu; live sessions opened via this handle
	next     int             // guarded by mu; round-robin executor cursor
	lats     []time.Duration // guarded by mu; latencies of cleanly closed sessions
	closed   int64           // guarded by mu; sessions closed cleanly via this handle
	drained  bool            // guarded by mu
	out      *RankOutput     // guarded by mu; Drain's memoized result
	err      error           // guarded by mu
}

// StartService builds one rank's resident spectrum service: the build
// phases run to the freeze point (a snapshot-cache hit skips the build
// entirely), then the correct-phase plane is armed and stays armed until
// Drain. The correction modes that assume a single one-shot job — work
// stealing (its chunk queue is cut once from resident reads) and R=2
// recovery (its executor re-derives a dead rank's one-shot estate) — are
// rejected here.
func StartService(e transport.Conn, src Source, opts Options) (*SpectrumService, error) {
	if opts.WorkSteal {
		return nil, fmt.Errorf("core: a resident service cannot run WorkSteal: the steal queue is cut once from a one-shot job's resident reads")
	}
	if opts.Replicas >= 2 {
		return nil, fmt.Errorf("core: a resident service cannot run Replicas=2: the recovery executor re-derives a dead rank's one-shot estate")
	}
	ctx, err := newRankCtx(e, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.runSteps(buildSteps(src, opts)); err != nil {
		return nil, err
	}
	ctx.enterPhase(stats.PhaseCorrect)
	s := &SpectrumService{ctx: ctx, armed: time.Now(), plane: ctx.armCorrect()}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Rank returns this service node's rank.
func (s *SpectrumService) Rank() int { return s.ctx.rank }

// Size returns the rank-group size.
func (s *SpectrumService) Size() int { return s.ctx.np }

// Open starts a correction session for tenant at the next executor rank in
// round-robin order, spreading concurrent clients across the group.
func (s *SpectrumService) Open(tenant string) (*Session, error) {
	s.mu.Lock()
	target := s.next % s.ctx.np
	s.next++
	s.mu.Unlock()
	return s.OpenAt(target, tenant)
}

// OpenAt starts a correction session for tenant at a specific executor
// rank. During drain it fails immediately with the typed draining
// rejection; past the executor's per-tenant cap it fails with the typed
// capacity rejection.
func (s *SpectrumService) OpenAt(target int, tenant string) (*Session, error) {
	if target < 0 || target >= s.ctx.np {
		return nil, fmt.Errorf("core: session target rank %d of %d", target, s.ctx.np)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &SessionError{Kind: SessionRejectDraining, Rank: s.ctx.rank,
			Tenant: tenant, Msg: "service draining"}
	}
	// Reserve before the wire open so a concurrent Drain cannot observe
	// zero open sessions while this one is mid-handshake.
	s.open++
	s.mu.Unlock()
	sess, err := s.ctx.openSession(target, tenant)
	if err != nil {
		s.mu.Lock()
		s.open--
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil, err
	}
	sess.svc = s
	return sess, nil
}

// sessionClosed is Session.Close's notification back to the opening
// service handle.
func (s *SpectrumService) sessionClosed(sess *Session, err error) {
	s.mu.Lock()
	s.open--
	if err == nil {
		s.closed++
		s.lats = append(s.lats, time.Since(sess.opened))
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Stats summarizes the sessions opened and completed through this handle
// so far (executor-side counters live in the drained RankOutput's stats).
func (s *SpectrumService) Stats() stats.Serve {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _, rejected, served := s.ctx.sessions.counters()
	return stats.NewServe(s.closed, rejected, served, time.Since(s.armed), s.lats)
}

// Drain gracefully ends this service node: new opens are rejected with
// the typed draining error (locally and at this rank's executor), sessions
// opened through this handle run to completion, and then the rank
// announces done and serves peers until the coordinator's group-wide stop
// — so Drain returns only when every rank has drained. The rank's output
// (correction totals of everything its executor corrected, full stats) is
// memoized; calling Drain again returns the same result.
func (s *SpectrumService) Drain() (*RankOutput, error) { return s.drain(true) }

// ServeExecutor runs this rank as a pure executor: it announces done right
// away (it will open no sessions of its own) and keeps answering peers'
// session opens and chunks until the coordinator rank's Drain stops the
// group. Unlike Drain it leaves this rank's executor admitting — the whole
// point of a pure executor is to accept the front door's round-robin opens
// — so group-wide drain rejection stays the coordinator handle's job.
func (s *SpectrumService) ServeExecutor() (*RankOutput, error) { return s.drain(false) }

func (s *SpectrumService) drain(rejectOpens bool) (*RankOutput, error) {
	s.mu.Lock()
	if s.drained {
		out, err := s.out, s.err
		s.mu.Unlock()
		return out, err
	}
	s.draining = true
	if rejectOpens {
		s.ctx.sessions.setDraining()
	}
	for s.open > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()

	ctx := s.ctx
	err := ctx.quiesceCorrect(s.plane, &ctx.res)
	ctx.st.Wall[stats.PhaseCorrect] += time.Since(s.armed)
	var out *RankOutput
	if err == nil {
		ctx.res = ctx.sessions.totalResult()
		ctx.st.PhaseMem[stats.PhaseCorrect] = ctx.currentMem()
		ctx.observeMem()
		out = ctx.rankOutput()
	}
	s.mu.Lock()
	s.drained, s.out, s.err = true, out, err
	s.mu.Unlock()
	return out, err
}
