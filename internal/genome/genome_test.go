package genome

import (
	"math"
	"testing"

	"reptile/internal/dna"
	"reptile/internal/reads"
)

func TestNewGenomeDeterministic(t *testing.T) {
	a := NewGenome(10000, 7)
	b := NewGenome(10000, 7)
	if a.Len() != 10000 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Seq.At(i) != b.Seq.At(i) {
			t.Fatal("same seed produced different genomes")
		}
	}
	c := NewGenome(10000, 8)
	diff := 0
	for i := 0; i < a.Len(); i++ {
		if a.Seq.At(i) != c.Seq.At(i) {
			diff++
		}
	}
	if diff < 1000 {
		t.Errorf("different seeds produced nearly identical genomes (%d diffs)", diff)
	}
}

func TestSimulateBasics(t *testing.T) {
	g := NewGenome(5000, 1)
	ds := Simulate("t", g, 500, DefaultProfile(80), 2)
	if ds.NumReads() != 500 {
		t.Fatalf("NumReads = %d", ds.NumReads())
	}
	for i, r := range ds.Reads {
		if r.Seq != int64(i+1) {
			t.Fatalf("read %d has seq %d", i, r.Seq)
		}
		if len(r.Base) != 80 || len(r.Qual) != 80 {
			t.Fatalf("read %d has wrong lengths", i)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("read %d invalid: %v", i, err)
		}
		for _, q := range r.Qual {
			if q < 2 || q > 41 {
				t.Fatalf("quality %d out of range", q)
			}
		}
	}
}

func TestSimulateErrorRateTracksQuality(t *testing.T) {
	g := NewGenome(20000, 3)
	ds := Simulate("t", g, 5000, DefaultProfile(100), 4)
	total := ds.TotalErrors()
	if total == 0 {
		t.Fatal("no errors injected")
	}
	// Expected error count: sum of 10^(-q/10) over all bases. Quality runs
	// 38 -> 22, so the average per-base rate is around 0.1-0.6%.
	rate := float64(total) / float64(5000*100)
	if rate < 0.0005 || rate > 0.02 {
		t.Errorf("error rate %.5f outside plausible band", rate)
	}
	// Errors should be biased toward the 3' (low-quality) end.
	head, tail := 0, 0
	for _, sites := range ds.Truth {
		for _, s := range sites {
			if s.Pos < 50 {
				head++
			} else {
				tail++
			}
		}
	}
	if tail <= head {
		t.Errorf("errors not biased to low-quality tail: head=%d tail=%d", head, tail)
	}
}

func TestTruthMatchesGenomeDisagreement(t *testing.T) {
	g := NewGenome(3000, 5)
	ds := Simulate("t", g, 300, DefaultProfile(60), 6)
	for i, sites := range ds.Truth {
		marked := map[int]dna.Base{}
		for _, s := range sites {
			marked[s.Pos] = s.True
			if ds.Reads[i].Base[s.Pos] == s.True {
				t.Fatalf("read %d pos %d: error site equals true base", i, s.Pos)
			}
		}
	}
}

func TestLocalizedProfileClustersErrors(t *testing.T) {
	g := NewGenome(20000, 9)
	n := 4000
	ds := Simulate("t", g, n, LocalizedProfile(100), 10)
	inSpan, outSpan := 0, 0
	inReads, outReads := 0, 0
	for i := range ds.Reads {
		frac := float64(i) / float64(n)
		local := (frac >= 0.10 && frac < 0.22) || (frac >= 0.60 && frac < 0.73)
		if local {
			inSpan += len(ds.Truth[i])
			inReads++
		} else {
			outSpan += len(ds.Truth[i])
			outReads++
		}
	}
	inRate := float64(inSpan) / float64(inReads)
	outRate := float64(outSpan) / float64(outReads)
	if inRate < 3*outRate {
		t.Errorf("localized spans not error-dense: in=%.3f out=%.3f errors/read", inRate, outRate)
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets {
		n := p.NumReads()
		want := p.Coverage * float64(p.GenomeLen) / float64(p.ReadLen)
		if math.Abs(float64(n)-want) > 1 {
			t.Errorf("%s: NumReads %d, want ~%.0f", p.Name, n, want)
		}
	}
	small := EColiSim.Scaled(0.05)
	ds := small.Build()
	if c := ds.Coverage(); math.Abs(c-96) > 2 {
		t.Errorf("scaled preset coverage %.1f, want ~96", c)
	}
	if ds.Name != "ecoli-sim" {
		t.Errorf("Name = %s", ds.Name)
	}
}

func TestScaledFloor(t *testing.T) {
	p := EColiSim.Scaled(0.000001)
	if p.GenomeLen < 4*p.ReadLen {
		t.Errorf("Scaled floor violated: %d", p.GenomeLen)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scaled accepted non-positive factor")
		}
	}()
	EColiSim.Scaled(0)
}

func TestEvaluatePerfectCorrection(t *testing.T) {
	g := NewGenome(5000, 11)
	ds := Simulate("t", g, 400, DefaultProfile(70), 12)
	corrected := make([]reads.Read, len(ds.Reads))
	for i := range ds.Reads {
		corrected[i] = ds.Reads[i].Clone()
		for _, s := range ds.Truth[i] {
			corrected[i].Base[s.Pos] = s.True
		}
	}
	acc, err := ds.Evaluate(corrected)
	if err != nil {
		t.Fatal(err)
	}
	if acc.FP != 0 || acc.FN != 0 {
		t.Errorf("perfect correction scored %v", acc)
	}
	if int(acc.TP) != ds.TotalErrors() {
		t.Errorf("TP = %d, want %d", acc.TP, ds.TotalErrors())
	}
	if acc.Gain() != 1.0 {
		t.Errorf("Gain = %f", acc.Gain())
	}
}

func TestEvaluateNoCorrection(t *testing.T) {
	g := NewGenome(5000, 13)
	ds := Simulate("t", g, 200, DefaultProfile(70), 14)
	acc, err := ds.Evaluate(ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if acc.TP != 0 || acc.FP != 0 {
		t.Errorf("identity correction scored %v", acc)
	}
	if int(acc.FN) != ds.TotalErrors() {
		t.Errorf("FN = %d, want %d", acc.FN, ds.TotalErrors())
	}
}

func TestEvaluateFalsePositives(t *testing.T) {
	g := NewGenome(5000, 15)
	ds := Simulate("t", g, 50, Profile{ReadLen: 60, QStart: 41, QEnd: 41, ErrorBoost: 0}, 16)
	if ds.TotalErrors() != 0 {
		t.Fatal("expected error-free dataset")
	}
	corrected := make([]reads.Read, len(ds.Reads))
	for i := range ds.Reads {
		corrected[i] = ds.Reads[i].Clone()
	}
	corrected[0].Base[5] = (corrected[0].Base[5] + 1) % 4
	acc, err := ds.Evaluate(corrected)
	if err != nil {
		t.Fatal(err)
	}
	if acc.FP != 1 || acc.ErrorsCorrected != 1 {
		t.Errorf("Accuracy = %v, want FP=1", acc)
	}
}

func TestEvaluateErrorToWrongBase(t *testing.T) {
	g := NewGenome(5000, 17)
	ds := Simulate("t", g, 300, DefaultProfile(70), 18)
	var ri, pos int
	found := false
	for i := range ds.Truth {
		if len(ds.Truth[i]) > 0 {
			ri, pos = i, ds.Truth[i][0].Pos
			found = true
			break
		}
	}
	if !found {
		t.Skip("no errors injected")
	}
	corrected := []reads.Read{ds.Reads[ri].Clone()}
	truth := ds.Truth[ri][0].True
	wrong := (truth + 1) % 4
	if wrong == ds.Reads[ri].Base[pos] {
		wrong = (truth + 2) % 4
	}
	corrected[0].Base[pos] = wrong
	acc, err := ds.Evaluate(corrected)
	if err != nil {
		t.Fatal(err)
	}
	if acc.FP != 1 || acc.FN == 0 {
		t.Errorf("miscorrection scored %v, want FP=1 and FN>=1", acc)
	}
}

func TestEvaluateRejectsForeignReads(t *testing.T) {
	g := NewGenome(2000, 19)
	ds := Simulate("t", g, 10, DefaultProfile(50), 20)
	bad := []reads.Read{{Seq: 99, Base: make([]dna.Base, 50), Qual: make([]byte, 50)}}
	if _, err := ds.Evaluate(bad); err == nil {
		t.Error("accepted unknown sequence number")
	}
	short := []reads.Read{{Seq: 1, Base: make([]dna.Base, 5), Qual: make([]byte, 5)}}
	if _, err := ds.Evaluate(short); err == nil {
		t.Error("accepted length mismatch")
	}
}

func TestAccuracyMetrics(t *testing.T) {
	a := Accuracy{TP: 80, FP: 10, FN: 20}
	if g := a.Gain(); math.Abs(g-0.7) > 1e-9 {
		t.Errorf("Gain = %f", g)
	}
	if s := a.Sensitivity(); math.Abs(s-0.8) > 1e-9 {
		t.Errorf("Sensitivity = %f", s)
	}
	if p := a.Precision(); math.Abs(p-80.0/90.0) > 1e-9 {
		t.Errorf("Precision = %f", p)
	}
	var zero Accuracy
	if zero.Gain() != 0 || zero.Sensitivity() != 0 || zero.Precision() != 0 {
		t.Error("zero Accuracy metrics not zero")
	}
	b := Accuracy{TP: 1, FP: 2, FN: 3, ErrorsCorrected: 4}
	a.Add(b)
	if a.TP != 81 || a.FP != 12 || a.FN != 23 || a.ErrorsCorrected != 4 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}
