package transport

import "fmt"

// NewProcGroup creates np in-process endpoints wired directly to each
// other's mailboxes: the transport used when ranks are goroutines of one
// process (all tests, benches, and the default engine mode).
//
// Delivery is a direct mailbox insert, so a Send happens-before the
// matching Recv returns, and per-(sender,tag) FIFO order follows from each
// sender being a single goroutine per tag stream.
func NewProcGroup(np int) ([]*Endpoint, error) {
	if np < 1 {
		return nil, fmt.Errorf("transport: group size %d < 1", np)
	}
	eps := make([]*Endpoint, np)
	for r := 0; r < np; r++ {
		eps[r] = &Endpoint{
			rank:     r,
			size:     np,
			mbox:     newMailbox(),
			counters: NewCounters(np),
		}
	}
	for r := 0; r < np; r++ {
		eps[r].sendFn = func(to int, m Message) error {
			return eps[to].deliver(m)
		}
	}
	return eps, nil
}

// CloseGroup closes every endpoint, returning the first error.
func CloseGroup(eps []*Endpoint) error {
	var first error
	for _, e := range eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
