// Package config parses the run-configuration file that drives
// reptile-correct, mirroring the paper's input convention: "The input to
// parallel Reptile consists of a configuration file, which specifies the
// fasta file and the quality file to be used for the error correction"
// (Step I), plus the chunk size, thresholds, and heuristic switches.
//
// Format: one `key = value` pair per line; '#' starts a comment; keys are
// case-insensitive with '-', '_' interchangeable. Unknown keys are errors —
// a typo silently ignored would change the experiment.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reptile/internal/core"
	"reptile/internal/transport"
)

// Settings is everything a run needs.
type Settings struct {
	FastaPath string
	QualPath  string
	OutPrefix string
	Ranks     int
	Streaming bool
	// ChaosSpec/ChaosSeed record the fault schedule in its file form; Parse
	// compiles them into Options.Chaos.
	ChaosSpec string
	ChaosSeed int64
	Options   core.Options
}

// Default returns the settings implied by an empty file.
func Default() Settings {
	return Settings{
		OutPrefix: "corrected",
		Ranks:     8,
		ChaosSeed: 1,
		Options:   core.DefaultOptions(),
	}
}

// Parse reads a configuration stream.
func Parse(r io.Reader) (Settings, error) {
	s := Default()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return s, fmt.Errorf("config: line %d: expected key = value, got %q", lineNo, line)
		}
		key := normalize(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if err := s.apply(key, val); err != nil {
			return s, fmt.Errorf("config: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	if s.ChaosSpec != "" {
		plan, err := transport.ParsePlan(s.ChaosSpec, s.ChaosSeed)
		if err != nil {
			return s, err
		}
		s.Options.Chaos = &plan
	}
	return s, s.Options.Validate()
}

// Load parses a configuration file from disk.
func Load(path string) (Settings, error) {
	f, err := os.Open(path)
	if err != nil {
		return Settings{}, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func normalize(key string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(key)), "-", "_")
}

func (s *Settings) apply(key, val string) error {
	asInt := func() (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("%s: %q is not an integer", key, val)
		}
		return v, nil
	}
	asUint32 := func() (uint32, error) {
		v, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("%s: %q is not a count", key, val)
		}
		return uint32(v), nil
	}
	asBool := func() (bool, error) {
		v, err := strconv.ParseBool(val)
		if err != nil {
			return false, fmt.Errorf("%s: %q is not a boolean", key, val)
		}
		return v, nil
	}

	cfg := &s.Options.Config
	h := &s.Options.Heuristics
	var err error
	switch key {
	case "fasta":
		s.FastaPath = val
	case "qual", "quality":
		s.QualPath = val
	case "out", "output":
		s.OutPrefix = val
	case "ranks", "np":
		s.Ranks, err = asInt()
	case "streaming", "stream":
		s.Streaming, err = asBool()
	case "chaos":
		s.ChaosSpec = val
	case "chaos_seed":
		var v int64
		v, err = strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: %q is not an integer", key, val)
		}
		s.ChaosSeed = v
	case "k":
		cfg.Spec.K, err = asInt()
	case "overlap", "tile_overlap":
		cfg.Spec.Overlap, err = asInt()
	case "kmer_threshold":
		cfg.KmerThreshold, err = asUint32()
	case "tile_threshold":
		cfg.TileThreshold, err = asUint32()
	case "quality_threshold":
		var v uint32
		v, err = asUint32()
		if v > 93 {
			return fmt.Errorf("quality_threshold %d out of range", v)
		}
		cfg.QualThreshold = byte(v)
	case "max_err_positions":
		cfg.MaxErrPositions, err = asInt()
	case "max_err_per_tile":
		cfg.MaxErrPerTile, err = asInt()
	case "max_corrections_per_read":
		cfg.MaxCorrectionsPerRead, err = asInt()
	case "chunk", "chunk_size":
		cfg.ChunkReads, err = asInt()
	case "load_balance":
		s.Options.LoadBalance, err = asBool()
	case "auto_thresholds":
		s.Options.AutoThresholds, err = asBool()
	case "universal":
		h.Universal, err = asBool()
	case "read_kmers":
		h.RetainReadKmers, err = asBool()
	case "cache_remote":
		h.CacheRemote, err = asBool()
		if h.CacheRemote {
			h.RetainReadKmers = true
		}
	case "replicate_kmers", "allgather_kmers":
		h.ReplicateKmers, err = asBool()
	case "replicate_tiles", "allgather_tiles":
		h.ReplicateTiles, err = asBool()
	case "batch_reads":
		h.BatchReads, err = asBool()
	case "partial_replication":
		h.PartialReplicationGroup, err = asInt()
	case "lookup_batch":
		h.LookupBatch, err = asInt()
	case "lookup_window":
		h.LookupWindow, err = asInt()
	case "workers":
		h.Workers, err = asInt()
	case "snapshot_dir":
		if val != "" {
			snap(&s.Options).Dir = val
		}
	case "snapshot_path":
		if val != "" {
			snap(&s.Options).Path = val
		}
	case "serve_addr":
		if val != "" {
			srv(&s.Options).Addr = val
		}
	case "serve_max_sessions":
		// 0 is Render's form for "not configured" (the engine default), so it
		// must not materialize a serve block — rendered settings round-trip.
		var v int
		v, err = asInt()
		if err == nil && v != 0 {
			srv(&s.Options).MaxSessions = v
		}
	case "serve_tenant_window":
		var v int
		v, err = asInt()
		if err == nil && v != 0 {
			srv(&s.Options).TenantWindow = v
		}
	case "replicated_layout":
		switch normalize(val) {
		case "hash":
			h.ReplicatedLayout = core.LayoutHash
		case "sorted":
			h.ReplicatedLayout = core.LayoutSorted
		case "cacheaware", "cache_aware":
			h.ReplicatedLayout = core.LayoutCacheAware
		default:
			return fmt.Errorf("replicated_layout: unknown layout %q", val)
		}
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return err
}

// snap returns the options' snapshot block, creating it on first use so a
// file can set either snapshot key without a separate enable switch. The
// input digest stays empty here — the CLI derives it from the input files at
// run time, keeping config parsing free of disk I/O.
func snap(o *core.Options) *core.SnapshotOptions {
	if o.Snapshot == nil {
		o.Snapshot = &core.SnapshotOptions{}
	}
	return o.Snapshot
}

// srv returns the options' serve block, creating it on first use, so a file
// can tune the session layer with any one of the serve_* keys.
func srv(o *core.Options) *core.ServeOptions {
	if o.Serve == nil {
		o.Serve = &core.ServeOptions{}
	}
	return o.Serve
}

// Render writes settings back in file form, for -dump-config style
// round-tripping and for recording the exact configuration of a run.
func (s Settings) Render() string {
	var sb strings.Builder
	w := func(k string, v interface{}) { fmt.Fprintf(&sb, "%s = %v\n", k, v) }
	w("fasta", s.FastaPath)
	w("qual", s.QualPath)
	w("out", s.OutPrefix)
	w("ranks", s.Ranks)
	w("streaming", s.Streaming)
	w("chaos", s.ChaosSpec)
	w("chaos_seed", s.ChaosSeed)
	c := s.Options.Config
	w("k", c.Spec.K)
	w("overlap", c.Spec.Overlap)
	w("kmer_threshold", c.KmerThreshold)
	w("tile_threshold", c.TileThreshold)
	w("quality_threshold", c.QualThreshold)
	w("max_err_positions", c.MaxErrPositions)
	w("max_err_per_tile", c.MaxErrPerTile)
	w("max_corrections_per_read", c.MaxCorrectionsPerRead)
	w("chunk", c.ChunkReads)
	w("load_balance", s.Options.LoadBalance)
	w("auto_thresholds", s.Options.AutoThresholds)
	h := s.Options.Heuristics
	w("universal", h.Universal)
	w("read_kmers", h.RetainReadKmers)
	w("cache_remote", h.CacheRemote)
	w("replicate_kmers", h.ReplicateKmers)
	w("replicate_tiles", h.ReplicateTiles)
	w("batch_reads", h.BatchReads)
	w("partial_replication", h.PartialReplicationGroup)
	w("lookup_batch", h.LookupBatch)
	w("lookup_window", h.LookupWindow)
	w("workers", h.Workers)
	w("replicated_layout", h.ReplicatedLayout)
	var snapDir, snapPath string
	if sn := s.Options.Snapshot; sn != nil {
		snapDir, snapPath = sn.Dir, sn.Path
	}
	w("snapshot_dir", snapDir)
	w("snapshot_path", snapPath)
	var serveAddr string
	var serveMax, serveWin int
	if sv := s.Options.Serve; sv != nil {
		serveAddr, serveMax, serveWin = sv.Addr, sv.MaxSessions, sv.TenantWindow
	}
	w("serve_addr", serveAddr)
	w("serve_max_sessions", serveMax)
	w("serve_tenant_window", serveWin)
	return sb.String()
}
