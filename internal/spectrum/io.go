package spectrum

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"reptile/internal/kmer"
)

// Disk format for spectra: spectrum construction is a fixed cost per
// dataset, so a rank (or a sequential pipeline) can save the pruned
// spectrum once and reload it for later correction runs.
//
// Layout: magic "RSP1" | count uint64 | count * (id uint64 | count uint32),
// entries sorted by ID, all little-endian.

var magic = [4]byte{'R', 'S', 'P', '1'}

// WriteTo serializes the store's entries (sorted by ID) to w and returns
// the byte count written.
func (h *HashStore) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 256<<10)
	if _, err := bw.Write(magic[:]); err != nil {
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(h.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(magic) + 8)
	var buf [EntrySize]byte
	for _, e := range h.Entries() {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(e.ID))
		binary.LittleEndian.PutUint32(buf[8:12], e.Count)
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += EntrySize
	}
	return n, bw.Flush()
}

// ReadFrom parses a spectrum produced by WriteTo into a fresh HashStore.
func ReadFrom(r io.Reader) (*HashStore, error) {
	br := bufio.NewReaderSize(r, 256<<10)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("spectrum: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("spectrum: bad magic %q", m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("spectrum: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxEntries = 1 << 34 // 16 Gi entries ~ 192 GiB: reject corrupt headers
	if count > maxEntries {
		return nil, fmt.Errorf("spectrum: implausible entry count %d", count)
	}
	h := NewHash(int(count))
	var buf [EntrySize]byte
	var prev kmer.ID
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("spectrum: truncated at entry %d of %d: %w", i, count, err)
		}
		id := kmer.ID(binary.LittleEndian.Uint64(buf[0:8]))
		if i > 0 && id <= prev {
			return nil, fmt.Errorf("spectrum: entries out of order at %d", i)
		}
		prev = id
		h.Set(id, binary.LittleEndian.Uint32(buf[8:12]))
	}
	// A trailing byte means the file does not match its header.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("spectrum: trailing data after %d entries", count)
	}
	return h, nil
}
