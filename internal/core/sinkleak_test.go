package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"reptile/internal/fastaio"
	"reptile/internal/reads"
	"reptile/internal/transport"
)

// closeTrackingSink wraps a Sink and counts writes and closes, so tests can
// prove the engine's lifecycle contract: closed exactly once on every exit
// path, including aborts.
type closeTrackingSink struct {
	inner Sink

	mu      sync.Mutex
	written int // guarded by mu; reads handed to Write
	closes  int // guarded by mu
}

func (s *closeTrackingSink) Write(batch []reads.Read) error {
	s.mu.Lock()
	s.written += len(batch)
	s.mu.Unlock()
	return s.inner.Write(batch)
}

func (s *closeTrackingSink) Close() error {
	s.mu.Lock()
	s.closes++
	s.mu.Unlock()
	return s.inner.Close()
}

func (s *closeTrackingSink) counts() (written, closes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written, s.closes
}

// TestStreamingSinkClosedOnAbort is the regression test for the streaming
// sink leak: a rank crashing mid-correction used to return through the
// abort path without closing the sink, leaking file handles and dropping
// whatever sat in the write buffers. Every sink must now be closed exactly
// once even when the run aborts, and the bytes already written must be
// flushed to disk (parseable FASTA covering exactly the reads the engine
// handed the sink).
func TestStreamingSinkClosedOnAbort(t *testing.T) {
	ds, opts := testDataset(t, 600, 8700)
	opts.Config.ChunkReads = 50 // several chunks, so writes land before the crash
	const np = 3

	// Calibrate: a clean streaming run tells us how many sends the crash
	// rank makes in total; crashing at three quarters of that lands the
	// fault mid-correction, after earlier chunks were already written.
	clean, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, opts, discardFactory())
	if err != nil {
		t.Fatal(err)
	}
	const crashRank = 1
	crashAfter := clean.Run.Ranks[crashRank].MsgsSent * 3 / 4
	if crashAfter < 1 {
		t.Fatalf("calibration run: rank %d sent only %d messages", crashRank, clean.Run.Ranks[crashRank].MsgsSent)
	}

	plan := transport.NewPlan(21)
	plan.CrashRank = crashRank
	plan.CrashAfter = crashAfter
	o := opts
	o.Chaos = &plan

	dir := t.TempDir()
	trackers := make([]*closeTrackingSink, np)
	factory := func(rank int) (Sink, error) {
		fs, err := NewFileSink(fmt.Sprintf("%s/out.rank%d", dir, rank))
		if err != nil {
			return nil, err
		}
		trackers[rank] = &closeTrackingSink{inner: fs}
		return trackers[rank], nil
	}

	err = awaitRun(t, "aborting streaming run", func() error {
		_, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, o, factory)
		return err
	})
	if err == nil {
		t.Fatal("run completed despite the crash schedule")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("%T is not an AbortError: %v", err, err)
	}

	for rank, tr := range trackers {
		if tr == nil {
			t.Fatalf("rank %d sink never built", rank)
		}
		written, closes := tr.counts()
		if closes != 1 {
			t.Errorf("rank %d sink closed %d times, want exactly 1", rank, closes)
		}
		// Close flushed: the on-disk FASTA parses back to exactly the reads
		// the engine handed the sink before the abort.
		f, err := os.Open(fmt.Sprintf("%s/out.rank%d.fa", dir, rank))
		if err != nil {
			t.Fatalf("rank %d output: %v", rank, err)
		}
		n := 0
		sc := fastaio.NewScanner(f)
		for {
			_, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("rank %d flushed output unreadable: %v", rank, err)
			}
			n++
		}
		f.Close()
		if n != written {
			t.Errorf("rank %d: %d reads on disk, sink was handed %d (buffer not flushed on abort)", rank, n, written)
		}
	}
}

// TestStreamingSinkFactoryFailureClosesSink: a factory may hand back a
// partially-built sink alongside its error; the engine must close it rather
// than leak it.
func TestStreamingSinkFactoryFailureClosesSink(t *testing.T) {
	ds, opts := testDataset(t, 60, 8800)
	boom := errors.New("factory boom")
	partial := &closeTrackingSink{inner: &CollectSink{}}
	factory := func(rank int) (Sink, error) {
		if rank == 1 {
			return partial, boom
		}
		return &CollectSink{}, nil
	}
	err := awaitRun(t, "factory failure", func() error {
		_, err := RunStreaming(&MemorySource{Reads: ds.Reads}, 2, opts, factory)
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("factory error not surfaced: %v", err)
	}
	if _, closes := partial.counts(); closes != 1 {
		t.Errorf("partially-built sink closed %d times, want exactly 1", closes)
	}
}

// TestStreamingSinkClosedOnCleanRun: the ordinary path also closes exactly
// once (the fix moved the close out of the correction phase; a double close
// would corrupt the flush accounting).
func TestStreamingSinkClosedOnCleanRun(t *testing.T) {
	ds, opts := testDataset(t, 200, 8900)
	const np = 2
	trackers := make([]*closeTrackingSink, np)
	factory := func(rank int) (Sink, error) {
		trackers[rank] = &closeTrackingSink{inner: &CollectSink{}}
		return trackers[rank], nil
	}
	if _, err := RunStreaming(&MemorySource{Reads: ds.Reads}, np, opts, factory); err != nil {
		t.Fatal(err)
	}
	total := 0
	for rank, tr := range trackers {
		written, closes := tr.counts()
		if closes != 1 {
			t.Errorf("rank %d sink closed %d times, want exactly 1", rank, closes)
		}
		total += written
	}
	if total != len(ds.Reads) {
		t.Errorf("sinks saw %d reads, want %d", total, len(ds.Reads))
	}
}
