package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// HotPath flags per-iteration heap allocations inside declared hot paths.
// A function opts in with `// reptile-lint:hotpath` on its doc comment; the
// analyzer then checks it and everything it provably calls within the
// module (transitively, via the Module call graph) for work a tight loop
// should not repeat: composite literals behind & or of slice/map shape,
// make/new, string<->[]byte conversions, closures built per iteration,
// append growth from zero capacity, fmt calls, and interface boxing at
// module-local call sites.
//
// The check is loop-relative: the same allocation outside a loop passes,
// because a once-per-call allocation is a different (and usually fine)
// cost class than a once-per-base one. Escape analysis is approximated,
// not computed — see DESIGN.md §13 for the soundness limits.
type HotPath struct{}

// NewHotPath returns the analyzer with default configuration.
func NewHotPath() *HotPath { return &HotPath{} }

// Name implements Analyzer.
func (hp *HotPath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (hp *HotPath) Doc() string {
	return "per-iteration heap allocations in reptile-lint:hotpath functions and their module-local callees"
}

// Check implements Analyzer; all work happens module-wide in CheckModule.
func (hp *HotPath) Check(pkg *Package, r *Reporter) {}

var hotpathRe = regexp.MustCompile(`reptile-lint:hotpath\b`)

// CheckModule implements ModuleAnalyzer: seed the worklist with every
// annotated function, then breadth-first over resolvable module-local
// callees, analyzing each function exactly once under its first root.
func (hp *HotPath) CheckModule(m *Module, report func(*Package) *Reporter) {
	type item struct {
		fi   *FuncInfo
		root string // "" when the function itself carries the annotation
	}
	var queue []item
	seen := map[*FuncInfo]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.SourceFiles() {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || !hotpathRe.MatchString(fd.Doc.Text()) {
					continue
				}
				if fi := m.FuncOf(pkg, fd); fi != nil && !seen[fi] {
					seen[fi] = true
					queue = append(queue, item{fi: fi})
				}
			}
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.fi.Decl.Body == nil {
			continue
		}
		root := it.root
		if root == "" {
			root = it.fi.String()
		}
		for _, callee := range hp.analyze(m, it.fi, it.root, report(it.fi.Pkg)) {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, item{fi: callee, root: root})
			}
		}
	}
}

// analyze scans one function for per-iteration allocations and returns its
// resolvable module-local callees for the worklist.
func (hp *HotPath) analyze(m *Module, fi *FuncInfo, root string, r *Reporter) []*FuncInfo {
	pkg, file, fn := fi.Pkg, fi.File, fi.Decl
	env := m.envOf(fi)
	suffix := ""
	if root != "" {
		suffix = fmt.Sprintf(" (on the hot path of %s)", root)
	}

	// Closures handed straight to go/defer are launch bodies, not
	// per-iteration garbage: a loop spawning one goroutine per worker is the
	// fan-out idiom, so only the literal's body is held to the loop rules.
	launched := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch t := n.(type) {
		case *ast.GoStmt:
			call = t.Call
		case *ast.DeferStmt:
			call = t.Call
		default:
			return true
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			launched[lit] = true
		}
		return true
	})

	var callees []*FuncInfo
	addCallee := func(call *ast.CallExpr) {
		if fi2 := m.resolveCall(pkg, file, env, call); fi2 != nil {
			callees = append(callees, fi2)
		}
	}

	var scan func(n ast.Node, inLoop bool)
	scan = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil {
				return true
			}
			if c == n {
				switch c.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
					return true // dispatched below only when met as children
				}
			}
			switch t := c.(type) {
			case *ast.ForStmt:
				scan(t.Init, inLoop)
				scan(t.Cond, true)
				scan(t.Post, true)
				scan(t.Body, true)
				return false
			case *ast.RangeStmt:
				scan(t.X, inLoop)
				scan(t.Body, true)
				return false
			case *ast.FuncLit:
				if inLoop && !launched[t] {
					r.Reportf(t.Pos(), "func literal in a loop allocates a closure every iteration; hoist it out of the loop%s", suffix)
				}
				scan(t.Body, false)
				return false
			case *ast.UnaryExpr:
				if t.Op == token.AND && inLoop {
					if lit, ok := t.X.(*ast.CompositeLit); ok {
						r.Reportf(t.Pos(), "&%s literal allocates every loop iteration; hoist or reuse it%s", typeLabel(pkg, lit.Type), suffix)
					}
				}
			case *ast.CompositeLit:
				if !inLoop {
					break
				}
				switch tt := t.Type.(type) {
				case *ast.ArrayType:
					if tt.Len == nil {
						r.Reportf(t.Pos(), "%s literal allocates a slice every loop iteration; hoist or reuse it%s", typeLabel(pkg, t.Type), suffix)
					}
				case *ast.MapType:
					r.Reportf(t.Pos(), "%s literal allocates a map every loop iteration; hoist or reuse it%s", typeLabel(pkg, t.Type), suffix)
				}
			case *ast.AssignStmt:
				if inLoop {
					hp.checkAppend(t, r, suffix)
				}
			case *ast.CallExpr:
				addCallee(t)
				if inLoop {
					hp.checkCall(m, fi, env, t, r, suffix)
				}
			}
			return true
		})
	}
	scan(fn.Body, false)
	return callees
}

// checkCall flags allocation-carrying calls inside a loop.
func (hp *HotPath) checkCall(m *Module, fi *FuncInfo, env *funcEnv, call *ast.CallExpr, r *Reporter, suffix string) {
	pkg, file := fi.Pkg, fi.File
	switch fun := unwrapParens(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			r.Reportf(call.Pos(), "make in a loop allocates every iteration; hoist the buffer out of the loop%s", suffix)
			return
		case "new":
			r.Reportf(call.Pos(), "new in a loop allocates every iteration; hoist the allocation out of the loop%s", suffix)
			return
		case "string":
			if len(call.Args) == 1 && !isBasicLit(call.Args[0]) {
				r.Reportf(call.Pos(), "string conversion in a loop copies and allocates every iteration%s", suffix)
				return
			}
		}
	case *ast.ArrayType:
		if elt, ok := fun.Elt.(*ast.Ident); ok && fun.Len == nil && elt.Name == "byte" && len(call.Args) == 1 {
			r.Reportf(call.Pos(), "[]byte conversion in a loop copies and allocates every iteration%s", suffix)
			return
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if _, isLocal := env.vars[x.Name]; !isLocal && m.imports[file][x.Name] == "fmt" {
				r.Reportf(call.Pos(), "fmt.%s in a loop boxes its arguments and allocates; move it off the hot path%s", fun.Sel.Name, suffix)
				return
			}
		}
	}
	fi2 := m.resolveCall(pkg, file, env, call)
	if fi2 == nil {
		return
	}
	for i, arg := range call.Args {
		p, ok := paramAt(fi2, i)
		if !ok || !p.iface {
			continue
		}
		if id, isIdent := arg.(*ast.Ident); isIdent && id.Name == "nil" {
			continue
		}
		r.Reportf(arg.Pos(), "call to %s boxes this argument into an interface parameter every iteration; keep hot-loop calls monomorphic%s", fi2.String(), suffix)
		return
	}
}

// checkAppend flags `x = append(x, ...)` in a loop when x was provably
// declared without capacity, so every iteration risks a growth copy.
func (hp *HotPath) checkAppend(as *ast.AssignStmt, r *Reporter, suffix string) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i := 0; i < len(as.Lhs) && i < len(as.Rhs); i++ {
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fun, ok := unwrapParens(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" || len(call.Args) == 0 {
			continue
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok || lhs.Obj == nil {
			continue
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok || arg.Obj != lhs.Obj {
			continue
		}
		if declaredWithoutCap(arg.Obj) {
			r.Reportf(as.Pos(), "append to %s grows from zero capacity every iteration; preallocate with make before the loop%s", lhs.Name, suffix)
		}
	}
}

// declaredWithoutCap reports whether obj's declaration is a slice with no
// storage behind it: `var x []T` or `x := []T{}`. Anything else — a
// parameter, a make with capacity, an unresolved expression — passes, so
// the check only fires on provable zero-capacity growth.
func declaredWithoutCap(obj *ast.Object) bool {
	switch d := obj.Decl.(type) {
	case *ast.ValueSpec:
		if len(d.Values) == 0 {
			at, ok := d.Type.(*ast.ArrayType)
			return ok && at.Len == nil
		}
		for i, n := range d.Names {
			if n.Obj == obj && i < len(d.Values) {
				return isEmptySliceLit(d.Values[i])
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range d.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Obj != obj {
				continue
			}
			if len(d.Rhs) == len(d.Lhs) {
				return isEmptySliceLit(d.Rhs[i])
			}
			return false
		}
	}
	return false
}

// isEmptySliceLit matches `[]T{}`.
func isEmptySliceLit(e ast.Expr) bool {
	lit, ok := unwrapParens(e).(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 0 {
		return false
	}
	at, ok := lit.Type.(*ast.ArrayType)
	return ok && at.Len == nil
}

// isBasicLit reports whether e is a literal constant (string("x") and
// friends allocate nothing new per iteration worth flagging).
func isBasicLit(e ast.Expr) bool {
	_, ok := unwrapParens(e).(*ast.BasicLit)
	return ok
}

// paramAt maps an argument index to its declared parameter, folding the
// variadic tail.
func paramAt(fi *FuncInfo, i int) (paramInfo, bool) {
	if len(fi.params) == 0 {
		return paramInfo{}, false
	}
	if i < len(fi.params) {
		return fi.params[i], true
	}
	if fi.variadic {
		return fi.params[len(fi.params)-1], true
	}
	return paramInfo{}, false
}

// typeLabel renders a composite literal's type for a diagnostic; untyped
// nested literals render as "composite".
func typeLabel(pkg *Package, t ast.Expr) string {
	if t == nil {
		return "composite"
	}
	return render(pkg.Fset, t)
}
